//! The continuous-load model (paper §4): overflow probability under
//! permanent admission pressure, for memoryless MBAC and for MBAC with
//! estimation memory.
//!
//! Parameterization. The heavy-traffic limit leaves exactly three
//! traffic/system parameters:
//!
//! * `cov = σ/μ` — the per-flow coefficient of variation;
//! * `t_h_tilde = T_h/√n` — the critical (repair) time-scale;
//! * `t_c` — the traffic correlation time-scale (OU autocorrelation
//!   `ρ(t) = e^{−|t|/T_c}`, eqn (31), which the paper's RCBR sources
//!   realize exactly).
//!
//! Derived: the repair drift `β = μ/(σ T̃_h)` (eqn (28)) and the
//! time-scale separation `γ = 1/(β T_c) = (T̃_h/T_c)(σ/μ)`.
//!
//! All `pf_*` functions take the certainty-equivalent safety factor
//! `α = Q⁻¹(p_ce)` the controller actually runs with, and return the
//! *realized* steady-state overflow probability.

use super::hitting::{hitting_probability, HittingProblem};
use mbac_num::{phi, q};

/// Continuous-load system description (OU traffic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousModel {
    /// Coefficient of variation `σ/μ` of one flow.
    pub cov: f64,
    /// Critical time-scale `T̃_h = T_h/√n`.
    pub t_h_tilde: f64,
    /// Traffic correlation time-scale `T_c`.
    pub t_c: f64,
}

impl ContinuousModel {
    /// Creates a model description.
    ///
    /// # Panics
    /// Panics unless all three parameters are positive and finite.
    pub fn new(cov: f64, t_h_tilde: f64, t_c: f64) -> Self {
        assert!(cov > 0.0 && cov.is_finite(), "cov must be positive");
        assert!(
            t_h_tilde > 0.0 && t_h_tilde.is_finite(),
            "T̃_h must be positive"
        );
        assert!(t_c > 0.0 && t_c.is_finite(), "T_c must be positive");
        ContinuousModel {
            cov,
            t_h_tilde,
            t_c,
        }
    }

    /// The repair drift `β = μ/(σ T̃_h)` (eqn (28)).
    #[inline]
    pub fn beta(&self) -> f64 {
        1.0 / (self.cov * self.t_h_tilde)
    }

    /// Time-scale separation `γ = 1/(β T_c) = (T̃_h/T_c)(σ/μ)`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.cov * self.t_h_tilde / self.t_c
    }

    /// Memoryless overflow probability by numerical integration of
    /// eqn (32):
    ///
    /// `p_f ≈ γ ∫₀^∞ (α+t)/[2(1−e^{−γt})]^{3/2} φ((α+t)/√(2(1−e^{−γt}))) dt`.
    pub fn pf_memoryless(&self, alpha: f64) -> f64 {
        self.pf_with_memory(alpha, 0.0)
    }

    /// Memoryless overflow probability under time-scale separation
    /// (`γ ≫ 1`), eqn (33): `p_f ≈ γ/(2√π) · e^{−α²/4}`.
    pub fn pf_memoryless_separated(&self, alpha: f64) -> f64 {
        self.gamma() / (2.0 * std::f64::consts::PI.sqrt()) * (-alpha * alpha / 4.0).exp()
    }

    /// Incremental variance of the estimation-error-minus-traffic
    /// process for memory `T_m`, in *scaled* time `τ = βt` (the `σ_m²`
    /// of §4.3):
    ///
    /// `σ_m²(τ) = (2T_c+T_m)/(T_c+T_m) − (2T_c/(T_c+T_m)) e^{−γτ}`.
    ///
    /// `T_m = 0` reduces to the memoryless `2(1 − e^{−γτ})`.
    pub fn sigma_m_sq(&self, tau: f64, t_m: f64) -> f64 {
        let tc = self.t_c;
        let a = (2.0 * tc + t_m) / (tc + t_m);
        let b = 2.0 * tc / (tc + t_m);
        a - b * (-self.gamma() * tau).exp()
    }

    /// Overflow probability with estimation memory `T_m`, by numerical
    /// integration of the general formula (eqn (37)):
    ///
    /// `p_f ≈ γT_c/(T_c+T_m) ∫₀^∞ (α+t)/σ_m³(t) φ((α+t)/σ_m(t)) dt
    ///        + Q(α √(1 + T_c/T_m))`.
    ///
    /// Implemented through the generic Bräker engine of
    /// [`super::hitting`]; the immediate-hit term arises automatically
    /// from `σ_m²(0) = T_m/(T_c+T_m) > 0`.
    pub fn pf_with_memory(&self, alpha: f64, t_m: f64) -> f64 {
        assert!(t_m >= 0.0, "memory must be non-negative");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        // Work in unscaled time with boundary slope β: σ²(t) in real
        // time is sigma_m_sq(βt).
        let beta = self.beta();
        let v_plus_0 = 2.0 / (self.t_c + t_m);
        hitting_probability(
            HittingProblem {
                alpha,
                beta,
                v_plus_0,
            },
            |t: f64| self.sigma_m_sq(beta * t, t_m),
            1e-13,
        )
        .min(1.0)
    }

    /// Closed form under time-scale separation (`γ ≫ 1`), eqn (38):
    ///
    /// `p_f ≈ γT_c/√((T_c+T_m)(2T_c+T_m)) · (1/√(2π))
    ///        · exp(−(T_c+T_m)/(2(2T_c+T_m)) α²)
    ///        + Q(α √(1 + T_c/T_m))`.
    pub fn pf_with_memory_separated(&self, alpha: f64, t_m: f64) -> f64 {
        assert!(t_m >= 0.0);
        let tc = self.t_c;
        let pre = self.gamma() * tc / ((tc + t_m) * (2.0 * tc + t_m)).sqrt();
        let expo = (tc + t_m) / (2.0 * (2.0 * tc + t_m)) * alpha * alpha;
        let drift_term = pre / (2.0 * std::f64::consts::PI).sqrt() * (-expo).exp();
        let immediate = if t_m == 0.0 {
            0.0
        } else {
            q(alpha * (1.0 + tc / t_m).sqrt())
        };
        (drift_term + immediate).min(1.0)
    }

    /// The paper's eqn (39) rewrite of (38) in terms of the target
    /// probability `p_ce = Q(α)` (uses `Q(x) ≈ φ(x)/x`):
    ///
    /// `p_f ≈ T̃_h/√((T_c+T_m)(2T_c+T_m)) · σ/(√(2π)μ)
    ///        · (√(2π) α p_ce)^((T_c+T_m)/(2T_c+T_m))
    ///        + Q(α √(1 + T_c/T_m))`.
    pub fn pf_with_memory_eqn39(&self, alpha: f64, t_m: f64) -> f64 {
        assert!(t_m >= 0.0);
        let tc = self.t_c;
        let p_ce = q(alpha);
        let expo = (tc + t_m) / (2.0 * tc + t_m);
        let sqrt2pi = (2.0 * std::f64::consts::PI).sqrt();
        let drift_term = self.t_h_tilde / ((tc + t_m) * (2.0 * tc + t_m)).sqrt() * self.cov
            / sqrt2pi
            * (sqrt2pi * alpha * p_ce).powf(expo);
        let immediate = if t_m == 0.0 {
            0.0
        } else {
            q(alpha * (1.0 + tc / t_m).sqrt())
        };
        (drift_term + immediate).min(1.0)
    }

    /// Masking-regime approximation (§5.3, eqn (41)): with
    /// `T_m = T̃_h ≫ T_c`,
    ///
    /// `p_f ≈ ( (σ/μ) α_q + 1 ) p_q`.
    ///
    /// The memory window masks the (unknown) traffic correlation
    /// structure entirely.
    pub fn pf_masking_regime(&self, alpha: f64) -> f64 {
        ((self.cov * alpha + 1.0) * q(alpha)).min(1.0)
    }

    /// Repair-regime approximation (§5.3): with `T_c ≫ T̃_h`,
    ///
    /// `p_f ≈ (1/√(2π)) (T_c/T̃_h)(σ/μ) exp(−(T_c/T̃_h)² α²)`.
    ///
    /// Estimation errors fluctuate so slowly that departures repair any
    /// mistake before it can cause overflow.
    pub fn pf_repair_regime(&self, alpha: f64) -> f64 {
        let r = self.t_c / self.t_h_tilde;
        (r * self.cov / (2.0 * std::f64::consts::PI).sqrt() * (-r * r * alpha * alpha).exp())
            .min(1.0)
    }

    /// Variance of the filtered mean-estimate error, `E[Z_t²] =
    /// T_c/(T_c + T_m)` (§4.3): decreases to 0 with more memory.
    pub fn estimator_error_variance(&self, t_m: f64) -> f64 {
        self.t_c / (self.t_c + t_m)
    }

    /// The paper's eqn (34) comparison form for the memoryless case:
    /// `p_f ≈ (T̃_h/(2T_c)) (σ α_q/μ) Q(α_q/√2)`.
    pub fn pf_memoryless_eqn34(&self, alpha: f64) -> f64 {
        (self.t_h_tilde / (2.0 * self.t_c) * self.cov * alpha * q(alpha / std::f64::consts::SQRT_2))
            .min(1.0)
    }
}

/// Free-standing evaluation of the eqn (32) integral (memoryless, OU),
/// exposed for cross-checking the [`ContinuousModel`] plumbing in tests
/// and benches:
///
/// `p_f(γ, α) = γ ∫₀^∞ (α+t)/[2(1−e^{−γt})]^{3/2} φ(·) dt`.
pub fn pf_memoryless_integral(gamma: f64, alpha: f64) -> f64 {
    assert!(gamma > 0.0);
    let integrand = |t: f64| {
        let s2: f64 = 2.0 * (1.0 - (-gamma * t).exp());
        if s2 <= 0.0 {
            return 0.0;
        }
        let s = s2.sqrt();
        gamma * (alpha + t) / (s2 * s) * phi((alpha + t) / s)
    };
    mbac_num::integrate_to_inf(integrand, 0.0, 1e-13)
        .value
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_num::inv_q;

    fn model() -> ContinuousModel {
        // Paper's Fig. 5 setting: σ/μ = 0.3, T_h = 1000, T_c = 1,
        // n = 1000 ⇒ T̃_h = 1000/√1000 ≈ 31.6.
        ContinuousModel::new(0.3, 1000.0 / 1000.0f64.sqrt(), 1.0)
    }

    #[test]
    fn beta_gamma_definitions() {
        let m = model();
        assert!((m.beta() - 1.0 / (0.3 * m.t_h_tilde)).abs() < 1e-12);
        assert!((m.gamma() - 0.3 * m.t_h_tilde / 1.0).abs() < 1e-12);
        assert!((m.beta() * m.t_c * m.gamma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integral_form_matches_model_plumbing() {
        let m = model();
        let alpha = inv_q(1e-3);
        let direct = pf_memoryless_integral(m.gamma(), alpha);
        let via_model = m.pf_memoryless(alpha);
        assert!(
            (direct / via_model - 1.0).abs() < 1e-6,
            "direct {direct} vs model {via_model}"
        );
    }

    #[test]
    fn separated_closed_form_agrees_when_gamma_large() {
        // γ ≫ 1: numeric (32) and closed (33) must agree.
        let m = ContinuousModel::new(0.3, 1000.0, 1.0); // γ = 300
        let alpha = inv_q(1e-3);
        let numeric = m.pf_memoryless(alpha).min(1.0);
        let closed = m.pf_memoryless_separated(alpha).min(1.0);
        assert!(
            (numeric / closed - 1.0).abs() < 0.02,
            "numeric {numeric} vs closed {closed}"
        );
    }

    #[test]
    fn memory_reduces_overflow_probability() {
        let m = model();
        let alpha = inv_q(1e-3);
        let p0 = m.pf_with_memory(alpha, 0.0);
        let p_small = m.pf_with_memory(alpha, m.t_h_tilde / 10.0);
        let p_big = m.pf_with_memory(alpha, m.t_h_tilde);
        assert!(p_small < p0, "memory must help: {p_small} vs {p0}");
        assert!(
            p_big < p_small,
            "more memory must help more: {p_big} vs {p_small}"
        );
    }

    #[test]
    fn infinite_memory_limit_is_q_alpha() {
        // As T_m → ∞ only live-traffic fluctuation remains: p_f → Q(α)
        // via the immediate term Q(α√(1+T_c/T_m)) → Q(α), drift term → 0.
        let m = model();
        let alpha = inv_q(1e-3);
        let p = m.pf_with_memory_separated(alpha, 1e9);
        assert!(
            (p / q(alpha) - 1.0).abs() < 1e-3,
            "p = {p}, Q(α) = {}",
            q(alpha)
        );
    }

    #[test]
    fn eqn37_and_eqn38_agree_under_separation() {
        let m = ContinuousModel::new(0.3, 1000.0, 1.0); // γ = 300 ≫ 1
        let alpha = inv_q(1e-3);
        for &t_m in &[0.0, 1.0, 10.0, 100.0] {
            let numeric = m.pf_with_memory(alpha, t_m);
            let closed = m.pf_with_memory_separated(alpha, t_m);
            assert!(
                (numeric / closed - 1.0).abs() < 0.05,
                "T_m={t_m}: numeric {numeric} vs closed {closed}"
            );
        }
    }

    #[test]
    fn eqn39_tracks_eqn38() {
        let m = ContinuousModel::new(0.3, 1000.0, 1.0);
        let alpha = inv_q(1e-3);
        for &t_m in &[1.0, 10.0, 100.0] {
            let e38 = m.pf_with_memory_separated(alpha, t_m);
            let e39 = m.pf_with_memory_eqn39(alpha, t_m);
            // (39) uses Q(x) ≈ φ(x)/x: agree within ~15%.
            assert!(
                (e39 / e38 - 1.0).abs() < 0.15,
                "T_m={t_m}: (38) {e38} vs (39) {e39}"
            );
        }
    }

    #[test]
    fn masking_regime_matches_general_formula() {
        // T_m = T̃_h ≫ T_c: eqn (41) should approximate the general (37).
        let m = ContinuousModel::new(0.3, 3000.0 / 30.0, 0.05); // T̃_h = 100 ≫ T_c
        let alpha = inv_q(1e-3);
        let general = m.pf_with_memory(alpha, m.t_h_tilde);
        let masking = m.pf_masking_regime(alpha);
        assert!(
            (general / masking - 1.0).abs() < 0.35,
            "general {general} vs masking {masking}"
        );
        // And the promised robustness: within a small factor of p_q itself.
        assert!(general < 10.0 * 1e-3 && general > 0.1 * 1e-3);
    }

    #[test]
    fn repair_regime_is_tiny() {
        // T_c ≫ T̃_h: overflow probability collapses.
        let m = ContinuousModel::new(0.3, 1.0, 100.0);
        let alpha = inv_q(1e-3);
        let p = m.pf_repair_regime(alpha);
        assert!(p < 1e-100, "repair regime p = {p}");
        let general = m.pf_with_memory(alpha, m.t_h_tilde);
        assert!(
            general < 1e-3,
            "general formula should also meet target: {general}"
        );
    }

    #[test]
    fn memoryless_worse_than_impulsive_limit_under_separation() {
        // eqn (34): continuous-load memoryless p_f exceeds Q(α/√2) by the
        // factor (T̃_h/2T_c)(σα/μ) ≫ 1 when time-scales separate.
        let m = ContinuousModel::new(0.3, 1000.0, 1.0);
        let alpha = inv_q(1e-3);
        let continuous = m.pf_memoryless_eqn34(alpha);
        let impulsive = q(alpha / std::f64::consts::SQRT_2);
        assert!(continuous > 10.0 * impulsive);
    }

    #[test]
    fn estimator_variance_shrinks_with_memory() {
        let m = model();
        assert!((m.estimator_error_variance(0.0) - 1.0).abs() < 1e-12);
        assert!(m.estimator_error_variance(10.0) < 0.1);
        assert!(m.estimator_error_variance(1e6) < 1e-5);
    }

    #[test]
    fn sigma_m_sq_limits() {
        let m = model();
        // T_m = 0: σ_m²(τ) = 2(1 − e^{−γτ}).
        assert!((m.sigma_m_sq(0.0, 0.0) - 0.0).abs() < 1e-12);
        let tau = 3.0;
        let want = 2.0 * (1.0 - (-m.gamma() * tau).exp());
        assert!((m.sigma_m_sq(tau, 0.0) - want).abs() < 1e-12);
        // τ → ∞: 1 + T_c/(T_c+T_m) = independent error + traffic.
        let t_m = 4.0;
        let inf = m.sigma_m_sq(1e9, t_m);
        assert!((inf - (1.0 + m.t_c / (m.t_c + t_m))).abs() < 1e-9);
        // τ = 0 with memory: T_m/(T_c+T_m).
        assert!((m.sigma_m_sq(0.0, t_m) - t_m / (m.t_c + t_m)).abs() < 1e-12);
    }
}
