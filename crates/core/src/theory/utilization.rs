//! Utilization arithmetic (paper §4.3, eqn (40)).
//!
//! Conservatism costs bandwidth: running the controller at `p_ce` rather
//! than `p'_ce` changes the average carried load by
//! `σ√n [Q⁻¹(p_ce) − Q⁻¹(p'_ce)]`. Together with the overflow formulas
//! this quantifies the memory-vs-conservatism tradeoff: short memory
//! needs a tiny `p_ce` (eqn (38) inverted) and therefore sacrifices
//! utilization.

use crate::params::FlowStats;
use mbac_num::inv_q;

/// Utilization difference (in bandwidth units) between running at
/// `p_ce` and at `p_ce_prime` (eqn (40)):
///
/// `ΔU = σ√n [ Q⁻¹(p_ce) − Q⁻¹(p'_ce) ]`.
///
/// Positive when `p_ce < p'_ce` (more conservative ⇒ less carried load).
pub fn utilization_loss(n: f64, flow: FlowStats, p_ce: f64, p_ce_prime: f64) -> f64 {
    assert!(n > 0.0);
    flow.std_dev() * n.sqrt() * (inv_q(p_ce) - inv_q(p_ce_prime))
}

/// Same as [`utilization_loss`] but taking the safety factors `α`
/// directly — needed when an adjusted `p_ce` has underflowed and only
/// `α_ce` is representable.
pub fn utilization_loss_alpha(n: f64, flow: FlowStats, alpha_ce: f64, alpha_prime: f64) -> f64 {
    assert!(n > 0.0);
    flow.std_dev() * n.sqrt() * (alpha_ce - alpha_prime)
}

/// Approximate average *fractional* utilization of the link when the
/// controller runs at safety factor `α` on a system of size `n`
/// (heavy-traffic mean of eqn (5) divided by capacity):
///
/// `U ≈ 1 − (σ α)/(μ √n)`.
pub fn mean_utilization(n: f64, flow: FlowStats, alpha: f64) -> f64 {
    assert!(n > 0.0);
    1.0 - flow.cov() * alpha / n.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowStats {
        FlowStats::from_mean_sd(1.0, 0.3)
    }

    #[test]
    fn loss_sign_convention() {
        // More conservative (smaller p_ce) ⇒ positive loss.
        let l = utilization_loss(100.0, flow(), 1e-6, 1e-3);
        assert!(l > 0.0);
        let g = utilization_loss(100.0, flow(), 1e-3, 1e-6);
        assert!((g + l).abs() < 1e-12, "antisymmetric");
    }

    #[test]
    fn loss_matches_alpha_form() {
        let a = utilization_loss(400.0, flow(), 1e-5, 1e-3);
        let b = utilization_loss_alpha(400.0, flow(), mbac_num::inv_q(1e-5), mbac_num::inv_q(1e-3));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn loss_scales_as_sqrt_n() {
        let l100 = utilization_loss(100.0, flow(), 1e-6, 1e-3);
        let l10000 = utilization_loss(10_000.0, flow(), 1e-6, 1e-3);
        assert!((l10000 / l100 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sqrt2_adjustment_loss_matches_section31() {
        // §3.1: choosing α_ce = √2 α_q loses (√2−1) σ α_q √n.
        let n = 10_000.0;
        let p_q = 1e-3;
        let alpha_q = mbac_num::inv_q(p_q);
        let via_eqn40 =
            utilization_loss_alpha(n, flow(), std::f64::consts::SQRT_2 * alpha_q, alpha_q);
        let direct = crate::theory::impulsive::utilization_loss_sqrt2(
            n,
            flow(),
            crate::params::QosTarget::new(p_q),
        );
        assert!((via_eqn40 - direct).abs() < 1e-9);
    }

    #[test]
    fn fractional_utilization_increases_with_size() {
        let alpha = 3.0;
        let u_small = mean_utilization(100.0, flow(), alpha);
        let u_big = mean_utilization(10_000.0, flow(), alpha);
        assert!(
            u_big > u_small,
            "statistical multiplexing gain grows with n"
        );
        assert!(u_big < 1.0 && u_small > 0.0);
    }
}
