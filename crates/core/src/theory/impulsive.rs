//! Impulsive-load, infinite-holding-time results (paper §3.1).
//!
//! The cleanest setting in the paper: one burst of flow arrivals at
//! `t = 0`, admission decided from the initial bandwidths, flows never
//! leave. Everything here is closed-form.

use crate::params::{FlowStats, QosTarget};
use mbac_num::{inv_q, phi, q};

/// Heavy-traffic approximation of the number of admissible flows under
/// perfect knowledge (eqn (5)):
///
/// `m* ≈ n − (σ α_q / μ) √n`.
///
/// The `(σ α_q/μ)√n` term is the safety margin set aside for known
/// burstiness.
pub fn m_star_approx(n: f64, flow: FlowStats, qos: QosTarget) -> f64 {
    assert!(n > 0.0);
    n - flow.cov() * qos.alpha() * n.sqrt()
}

/// Asymptotic distribution of the number of flows `M₀` the
/// certainty-equivalent MBAC admits (Prop. 3.1 / eqn (11)):
/// `M₀ ≈ n − (σ/μ)(Y₀ + α_q)√n` with `Y₀ ~ N(0,1)`, i.e. Gaussian with
///
/// mean `n − (σ α_q/μ)√n` and standard deviation `(σ/μ)√n`.
///
/// Returns `(mean, sd)`.
pub fn m0_distribution(n: f64, flow: FlowStats, qos: QosTarget) -> (f64, f64) {
    assert!(n > 0.0);
    let cov = flow.cov();
    (n - cov * qos.alpha() * n.sqrt(), cov * n.sqrt())
}

/// The certainty-equivalence penalty (Prop. 3.3): the realized
/// steady-state overflow probability of the memoryless MBAC in the
/// impulsive-load model,
///
/// `p_f = Q( Q⁻¹(p_q) / √2 )`,
///
/// *independently* of the flow distribution and the system size. The
/// variance doubling comes from the admission-time estimation error
/// `Y₀` adding to the live bandwidth fluctuation `Y_t`.
pub fn pf_certainty_equivalent(p_q: f64) -> f64 {
    q(inv_q(p_q) / std::f64::consts::SQRT_2)
}

/// The adjusted certainty-equivalent target achieving `p_f = p_q` in the
/// impulsive-load model (eqn (15)): `p_ce = Q(√2 α_q)`.
pub fn pce_for_target(p_q: f64) -> f64 {
    q(std::f64::consts::SQRT_2 * inv_q(p_q))
}

/// Small-probability approximation of eqn (15) via `Q(x) ≈ φ(x)/x`:
///
/// `p_ce ≈ √π · α_q · p_q²` — "set the certainty-equivalent target
/// roughly to the square of the QoS target".
///
/// Note: the memorandum prints the constant as `α_q/(2√π)`, which is
/// off from the `Q(x) ≈ φ(x)/x` derivation by exactly `2π` (substitute
/// `φ(α_q) = α_q p_q` into `Q(√2 α_q) ≈ φ(√2 α_q)/(√2 α_q)`); the tests
/// verify the corrected constant against the exact eqn (15).
pub fn pce_for_target_approx(p_q: f64) -> f64 {
    let alpha = inv_q(p_q);
    std::f64::consts::PI.sqrt() * alpha * p_q * p_q
}

/// Utilization lost (in bandwidth units) by running the impulsive-load
/// MBAC at the conservative `α_ce = √2 α_q` instead of `α_q` (§3.1):
/// `(√2 − 1) σ α_q √n`.
pub fn utilization_loss_sqrt2(n: f64, flow: FlowStats, qos: QosTarget) -> f64 {
    (std::f64::consts::SQRT_2 - 1.0) * flow.std_dev() * qos.alpha() * n.sqrt()
}

/// Sensitivity of the realized overflow probability to an error in the
/// *measured mean*, at the nominal operating point (§3.1):
/// `s_μ = −φ(α_q) (μ/σ) √m*`. Grows like `√n` — the reason
/// mean-estimation error never stops mattering as the system scales.
pub fn sensitivity_mean(flow: FlowStats, qos: QosTarget, m_star: f64) -> f64 {
    -phi(qos.alpha()) * flow.mean / flow.std_dev() * m_star.sqrt()
}

/// Sensitivity to an error in the *measured standard deviation*:
/// `s_σ = −α_q φ(α_q)/σ`. Independent of the system size — which is why
/// σ-estimation error washes out at scale while μ-error does not.
pub fn sensitivity_std_dev(flow: FlowStats, qos: QosTarget) -> f64 {
    -qos.alpha() * phi(qos.alpha()) / flow.std_dev()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowStats {
        FlowStats::from_mean_sd(1.0, 0.3)
    }

    #[test]
    fn paper_headline_number() {
        // §3.1: p_q = 1e-5 ⇒ p_f ≈ 1.3e-3 — "two orders of magnitude".
        let pf = pf_certainty_equivalent(1e-5);
        assert!((pf / 1.3e-3 - 1.0).abs() < 0.05, "pf = {pf}");
    }

    #[test]
    fn penalty_is_always_worse_than_target() {
        for &p in &[1e-2, 1e-3, 1e-4, 1e-6, 1e-8] {
            let pf = pf_certainty_equivalent(p);
            assert!(pf > p, "p_f {pf} must exceed p_q {p}");
        }
    }

    #[test]
    fn pce_inversion_roundtrip() {
        // Running the controller at p_ce must (by Prop. 3.3 applied to
        // p_ce) produce exactly p_q.
        for &p_q in &[1e-2, 1e-3, 1e-5] {
            let p_ce = pce_for_target(p_q);
            assert!(p_ce < p_q);
            let realized = pf_certainty_equivalent(p_ce);
            assert!(
                (realized / p_q - 1.0).abs() < 1e-6,
                "p_q={p_q}: realized {realized}"
            );
        }
    }

    #[test]
    fn pce_approx_close_to_exact() {
        for &p_q in &[1e-3, 1e-4, 1e-5] {
            let exact = pce_for_target(p_q);
            let approx = pce_for_target_approx(p_q);
            // φ(x)/x approximation of Q: ~1/x² relative error, so ~25%
            // is the honest expectation at these probability levels.
            assert!(
                (approx / exact - 1.0).abs() < 0.25,
                "p_q={p_q}: exact {exact}, approx {approx}"
            );
        }
    }

    #[test]
    fn pce_is_roughly_pq_squared() {
        let p_q = 1e-4;
        let p_ce = pce_for_target(p_q);
        // Within an order of magnitude of p_q².
        assert!(p_ce > 1e-9 && p_ce < 1e-7, "p_ce = {p_ce}");
    }

    #[test]
    fn m_star_and_m0_mean_agree() {
        let qos = QosTarget::new(1e-3);
        let (m0_mean, m0_sd) = m0_distribution(10_000.0, flow(), qos);
        let ms = m_star_approx(10_000.0, flow(), qos);
        assert!((m0_mean - ms).abs() < 1e-9);
        assert!((m0_sd - 30.0).abs() < 1e-9); // (σ/μ)√n = 0.3·100
    }

    #[test]
    fn safety_margin_scales_with_sqrt_n() {
        let qos = QosTarget::new(1e-3);
        let margin = |n: f64| n - m_star_approx(n, flow(), qos);
        assert!((margin(40_000.0) / margin(10_000.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_scaling_with_system_size() {
        let qos = QosTarget::new(1e-3);
        let s_mu_small = sensitivity_mean(flow(), qos, 100.0);
        let s_mu_large = sensitivity_mean(flow(), qos, 10_000.0);
        // |s_μ| grows like √m*.
        assert!((s_mu_large / s_mu_small - 10.0).abs() < 1e-9);
        // s_σ does not depend on m* at all.
        let s_sd = sensitivity_std_dev(flow(), qos);
        assert!(s_sd < 0.0);
    }

    #[test]
    fn utilization_loss_positive_and_scales() {
        let qos = QosTarget::new(1e-3);
        let l1 = utilization_loss_sqrt2(100.0, flow(), qos);
        let l2 = utilization_loss_sqrt2(400.0, flow(), qos);
        assert!(l1 > 0.0);
        assert!((l2 / l1 - 2.0).abs() < 1e-9);
    }
}
