//! The Grossglauser–Tse analytical framework: explicit formulas for the
//! performance of measurement-based admission control.
//!
//! Organized by the paper's model sequence:
//!
//! * [`impulsive`] — impulsive load, infinite holding time (§3.1):
//!   the √2 certainty-equivalence penalty (Prop. 3.3), the adjusted
//!   target of eqn (15), the `M₀` fluctuation law (Prop. 3.1 / eqn (10)),
//!   and the sensitivity analysis;
//! * [`finite_holding`] — impulsive load with departures (§3.2, eqn (21));
//! * [`hitting`] — the Bräker boundary-crossing approximation for
//!   locally-stationary Gaussian processes (eqn (30)), the engine behind
//!   the continuous-load results;
//! * [`continuous`] — the continuous-load model (§4): overflow
//!   probability for memoryless MBAC (eqns (32)–(35)) and for MBAC with
//!   estimation memory `T_m` (eqns (37)–(39)), plus the masking- and
//!   repair-regime approximations of §5.3;
//! * [`invert`] — solving the formulas backwards for the adjusted
//!   certainty-equivalent target `p_ce` (Fig. 6);
//! * [`utilization`] — the utilization cost of conservatism (eqn (40)).

pub mod continuous;
pub mod finite_holding;
pub mod hitting;
pub mod impulsive;
pub mod invert;
pub mod utilization;

pub use continuous::ContinuousModel;
pub use hitting::hitting_probability;
pub use invert::{invert_pce, InvertMethod};
