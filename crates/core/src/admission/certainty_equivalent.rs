//! The certainty-equivalent MBAC (paper §3.1, eqn (6)).
//!
//! Plugs *measured* statistics into the Gaussian criterion as if they
//! were the truth. The paper's central message is that doing so with the
//! raw QoS target `p_q` misses the target by orders of magnitude; the
//! robust fix is to (a) give the estimator memory `T_m ≈ T̃_h` and
//! (b) use an *adjusted* target `p_ce < p_q` obtained by inverting the
//! theory (see [`crate::theory::invert`]). This type carries that
//! adjusted target.

use super::{gaussian_admissible_count, AdmissionPolicy};
use crate::estimators::Estimate;
use crate::params::QosTarget;

/// Certainty-equivalent Gaussian admission with target `p_ce`.
#[derive(Debug, Clone, Copy)]
pub struct CertaintyEquivalent {
    target: QosTarget,
}

impl CertaintyEquivalent {
    /// Creates the controller with certainty-equivalent target `p_ce`.
    pub fn new(target: QosTarget) -> Self {
        CertaintyEquivalent { target }
    }

    /// Creates the controller from a raw probability.
    pub fn from_probability(p_ce: f64) -> Self {
        Self::new(QosTarget::new(p_ce))
    }

    /// The certainty-equivalent target in use.
    pub fn target(&self) -> QosTarget {
        self.target
    }
}

impl AdmissionPolicy for CertaintyEquivalent {
    fn admissible_count(&self, est: Estimate, capacity: f64) -> f64 {
        gaussian_admissible_count(est.mean, est.std_dev(), self.target.alpha(), capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_num::q;

    #[test]
    fn responds_to_measurements() {
        let ce = CertaintyEquivalent::from_probability(1e-3);
        let low = ce.admissible_count(Estimate::new(1.1, 0.09), 100.0);
        let high = ce.admissible_count(Estimate::new(0.9, 0.09), 100.0);
        // Under-estimated mean -> admits more flows: the dangerous direction.
        assert!(high > low);
    }

    #[test]
    fn satisfies_eqn_six_with_measured_values() {
        let ce = CertaintyEquivalent::from_probability(1e-4);
        let est = Estimate::new(0.97, 0.1);
        let c = 250.0;
        let m = ce.admissible_count(est, c);
        let lhs = q((c - m * est.mean) / (est.std_dev() * m.sqrt()));
        assert!((lhs / 1e-4 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conservative_target_admits_fewer() {
        let est = Estimate::new(1.0, 0.09);
        let lax = CertaintyEquivalent::from_probability(1e-2).admissible_count(est, 100.0);
        let strict = CertaintyEquivalent::from_probability(1e-6).admissible_count(est, 100.0);
        assert!(strict < lax);
    }

    #[test]
    fn zero_mean_estimate_admits_nothing() {
        let ce = CertaintyEquivalent::from_probability(1e-3);
        assert_eq!(ce.admissible_count(Estimate::new(0.0, 0.0), 100.0), 0.0);
        assert!(!ce.admit(Estimate::new(0.0, 0.0), 100.0, 0));
    }
}
