//! The measured-sum admission algorithm of Jamin, Danzig, Shenker &
//! Zhang (SIGCOMM '95) — the related-work baseline discussed in §6 of
//! Grossglauser & Tse.
//!
//! Where the Gaussian framework estimates per-flow *statistics*, the
//! measured-sum algorithm estimates the aggregate *load envelope*: it
//! averages the aggregate bandwidth over sampling blocks of length `S`,
//! takes the **maximum** block average over a trailing measurement
//! window of length `T`, and admits a new flow of declared rate `r` iff
//!
//! `ν̂ + r ≤ u · c`
//!
//! for a utilization target `u < 1`. Grossglauser & Tse's point (§6) is
//! that `T` plays the role of their memory `T_m` and `u` the role of
//! their adjusted target `p_ce`, but that the original paper gives no
//! principled way to set them; this implementation lets the benches
//! compare the tuned-by-rule Gaussian controller against grid-tuned
//! measured-sum.
//!
//! Omission: Jamin et al.'s delay-measurement half (their predictive
//! service classes measure queueing delay too; on a bufferless link
//! there is no queue, so only the bandwidth half applies) and the
//! back-off multiplier λ (subsumed here by the utilization target).

use std::collections::VecDeque;

/// Jamin-style measured-sum admission state.
#[derive(Debug, Clone)]
pub struct MeasuredSum {
    /// Utilization target `u ∈ (0, 1]`.
    utilization_target: f64,
    /// Measurement window length `T` (time units).
    window: f64,
    /// Sampling block length `S` (time units), `S ≤ T`.
    block: f64,
    /// Declared per-flow rate used in the admission test.
    declared_rate: f64,
    /// Completed block averages within the window: `(block end, avg)`.
    blocks: VecDeque<(f64, f64)>,
    /// Current (incomplete) block accumulator.
    acc: f64,
    acc_samples: u32,
    block_start: Option<f64>,
    /// Most recent raw aggregate sample.
    last_aggregate: Option<f64>,
}

impl MeasuredSum {
    /// Creates the policy.
    ///
    /// # Panics
    /// Panics unless `0 < u ≤ 1`, `0 < S ≤ T`, `declared_rate > 0`.
    pub fn new(utilization_target: f64, window: f64, block: f64, declared_rate: f64) -> Self {
        assert!(
            utilization_target > 0.0 && utilization_target <= 1.0,
            "utilization target must be in (0,1]"
        );
        assert!(block > 0.0 && window >= block, "need 0 < S ≤ T");
        assert!(declared_rate > 0.0, "declared rate must be positive");
        MeasuredSum {
            utilization_target,
            window,
            block,
            declared_rate,
            blocks: VecDeque::new(),
            acc: 0.0,
            acc_samples: 0,
            block_start: None,
            last_aggregate: None,
        }
    }

    /// Feeds one sample of the measured aggregate load at time `t`.
    pub fn observe_aggregate(&mut self, t: f64, aggregate: f64) {
        self.last_aggregate = Some(aggregate);
        match self.block_start {
            None => {
                self.block_start = Some(t);
                self.acc = aggregate;
                self.acc_samples = 1;
            }
            Some(start) => {
                if t - start >= self.block {
                    let avg = self.acc / self.acc_samples as f64;
                    self.blocks.push_back((t, avg));
                    self.block_start = Some(t);
                    self.acc = aggregate;
                    self.acc_samples = 1;
                } else {
                    self.acc += aggregate;
                    self.acc_samples += 1;
                }
            }
        }
        // Evict blocks older than the window.
        while let Some(&(end, _)) = self.blocks.front() {
            if t - end > self.window {
                self.blocks.pop_front();
            } else {
                break;
            }
        }
    }

    /// The load estimate `ν̂`: the maximum block average in the window
    /// (falling back to the latest raw sample while the first block is
    /// still filling). `None` before any observation.
    pub fn load_estimate(&self) -> Option<f64> {
        let max_block = self
            .blocks
            .iter()
            .map(|&(_, avg)| avg)
            .fold(f64::NEG_INFINITY, f64::max);
        match (self.blocks.is_empty(), self.last_aggregate) {
            (true, None) => None,
            (true, Some(raw)) => Some(raw),
            (false, Some(raw)) => Some(max_block.max(raw)),
            (false, None) => Some(max_block),
        }
    }

    /// Whether a new flow of the declared rate may be admitted:
    /// `ν̂ + r ≤ u·c`.
    pub fn admit(&self, capacity: f64) -> bool {
        match self.load_estimate() {
            Some(nu) => nu + self.declared_rate <= self.utilization_target * capacity,
            None => false,
        }
    }

    /// How many *additional* declared-rate flows fit right now:
    /// `max(0, ⌊(u·c − ν̂)/r⌋)`. `None` before any observation.
    pub fn headroom_flows(&self, capacity: f64) -> Option<f64> {
        self.load_estimate().map(|nu| {
            ((self.utilization_target * capacity - nu) / self.declared_rate)
                .floor()
                .max(0.0)
        })
    }

    /// Clears all measurement state.
    pub fn reset(&mut self) {
        self.blocks.clear();
        self.acc = 0.0;
        self.acc_samples = 0;
        self.block_start = None;
        self.last_aggregate = None;
    }

    /// The configured utilization target.
    pub fn utilization_target(&self) -> f64 {
        self.utilization_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(ms: &mut MeasuredSum, t0: f64, dt: f64, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            ms.observe_aggregate(t0 + i as f64 * dt, v);
        }
    }

    #[test]
    fn tracks_maximum_block_average() {
        let mut ms = MeasuredSum::new(0.9, 10.0, 1.0, 1.0);
        // Two blocks: averages 5 and 8; then a quiet raw sample of 2.
        feed(&mut ms, 0.0, 0.5, &[5.0, 5.0, 5.0]); // completes block [0,1)
        feed(&mut ms, 1.5, 0.5, &[8.0, 8.0, 8.0]); // completes block [1,2)ish
        ms.observe_aggregate(3.0, 2.0);
        let nu = ms.load_estimate().unwrap();
        assert!(
            nu >= 8.0 - 1e-9,
            "max-based estimate must remember the peak: {nu}"
        );
    }

    #[test]
    fn old_peaks_age_out_of_the_window() {
        let mut ms = MeasuredSum::new(0.9, 5.0, 1.0, 1.0);
        feed(&mut ms, 0.0, 0.5, &[50.0, 50.0, 50.0]);
        // Quiet for far longer than the window.
        feed(&mut ms, 2.0, 1.0, &[1.0; 20]);
        let nu = ms.load_estimate().unwrap();
        assert!(nu < 2.0, "50.0 peak should have aged out: {nu}");
    }

    #[test]
    fn admission_respects_utilization_target() {
        let mut ms = MeasuredSum::new(0.5, 10.0, 1.0, 1.0);
        ms.observe_aggregate(0.0, 40.0);
        // u·c = 50; ν̂ + 1 = 41 ≤ 50 → admit.
        assert!(ms.admit(100.0));
        ms.observe_aggregate(0.1, 49.5);
        assert!(!ms.admit(100.0), "49.5 + 1 > 50 must reject");
    }

    #[test]
    fn headroom_counts_declared_rate_flows() {
        let mut ms = MeasuredSum::new(1.0, 10.0, 1.0, 2.0);
        ms.observe_aggregate(0.0, 90.0);
        // (100 − 90)/2 = 5 extra flows.
        assert_eq!(ms.headroom_flows(100.0), Some(5.0));
        ms.observe_aggregate(0.1, 120.0);
        assert_eq!(ms.headroom_flows(100.0), Some(0.0), "overload clamps at 0");
    }

    #[test]
    fn cold_start_rejects() {
        let ms = MeasuredSum::new(0.9, 10.0, 1.0, 1.0);
        assert!(ms.load_estimate().is_none());
        assert!(!ms.admit(100.0));
        assert!(ms.headroom_flows(100.0).is_none());
    }

    #[test]
    fn reset_clears_everything() {
        let mut ms = MeasuredSum::new(0.9, 10.0, 1.0, 1.0);
        feed(&mut ms, 0.0, 0.5, &[5.0; 10]);
        ms.reset();
        assert!(ms.load_estimate().is_none());
    }

    #[test]
    #[should_panic]
    fn rejects_block_longer_than_window() {
        MeasuredSum::new(0.9, 1.0, 2.0, 1.0);
    }
}
