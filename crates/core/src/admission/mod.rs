//! Admission criteria.
//!
//! All Gaussian criteria share the same shape (paper eqns (4) and (6)):
//! admit up to `M` flows, where `M` solves
//!
//! `Q[ (c − M μ) / (σ √M) ] = p`.
//!
//! [`gaussian_admissible_count`] solves this in closed form (the paper's
//! eqn (42)); the policies differ only in where `μ`, `σ` and `p` come
//! from:
//!
//! * [`PerfectKnowledge`] — true statistics, target `p_q` (the ideal
//!   controller the paper benchmarks against);
//! * [`CertaintyEquivalent`] — measured statistics plugged in as if they
//!   were true, with a possibly-adjusted target `p_ce` (the paper's MBAC);
//! * [`PeakRate`] — `c / peak`, the classical no-multiplexing baseline;
//! * [`AggregateGaussian`] — heterogeneous-flow form working directly on
//!   aggregate mean/variance (§5.4).

mod aggregate;
mod certainty_equivalent;
mod measured_sum;
mod peak_rate;
mod perfect;

pub use aggregate::AggregateGaussian;
pub use certainty_equivalent::CertaintyEquivalent;
pub use measured_sum::MeasuredSum;
pub use peak_rate::PeakRate;
pub use perfect::PerfectKnowledge;

use crate::estimators::Estimate;

/// A policy that maps (estimated) per-flow statistics to the number of
/// flows the link can carry at the configured QoS.
///
/// Policies are `Send + Sync`: the Monte Carlo harnesses share one
/// policy across replication worker threads.
pub trait AdmissionPolicy: Send + Sync {
    /// The estimated admissible number of flows `M` (the paper's `M_t`),
    /// given per-flow statistics and the link capacity. Returns a real
    /// number; callers compare against the integer flow count (a flow is
    /// admitted while `N < ⌊M⌋`).
    fn admissible_count(&self, est: Estimate, capacity: f64) -> f64;

    /// Whether one more flow may be admitted when `current` flows are
    /// already in the system.
    fn admit(&self, est: Estimate, capacity: f64, current: usize) -> bool {
        ((current + 1) as f64) <= self.admissible_count(est, capacity)
    }
}

/// Sharing a policy: an `Arc<P>` is itself a policy, delegating to the
/// shared instance. The decision plane (`mbac-serve`) keeps thousands of
/// per-link controllers alive at once; policies are stateless after
/// construction, so all of them can point at one allocation instead of
/// each boxing its own copy.
impl<P: AdmissionPolicy + ?Sized> AdmissionPolicy for std::sync::Arc<P> {
    fn admissible_count(&self, est: Estimate, capacity: f64) -> f64 {
        (**self).admissible_count(est, capacity)
    }

    fn admit(&self, est: Estimate, capacity: f64, current: usize) -> bool {
        (**self).admit(est, capacity, current)
    }
}

/// Solves `Q[(c − Mμ)/(σ√M)] = p` for `M` — the paper's eqn (42):
///
/// `M = ( √(σ²α² + 4cμ) − σα )² / (4μ²)`,  `α = Q⁻¹(p)`.
///
/// Degenerate cases: `σ = 0` gives the fluid limit `M = c/μ`; a
/// non-positive measured mean yields `M = 0` (nothing can be admitted on
/// the basis of a nonsensical estimate — fail safe).
pub fn gaussian_admissible_count(mean: f64, std_dev: f64, alpha: f64, capacity: f64) -> f64 {
    assert!(capacity > 0.0, "capacity must be positive");
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    if mean <= 0.0 {
        return 0.0;
    }
    if std_dev == 0.0 {
        return capacity / mean;
    }
    let sa = std_dev * alpha;
    let disc = sa * sa + 4.0 * capacity * mean;
    debug_assert!(disc >= 0.0);
    let sqrt_m = (disc.sqrt() - sa) / (2.0 * mean);
    if sqrt_m <= 0.0 {
        // α so large (p so small) that even one flow violates the target.
        0.0
    } else {
        sqrt_m * sqrt_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_num::{inv_q, q};

    #[test]
    fn solves_the_defining_equation() {
        let (mu, sd, c) = (1.0, 0.3, 100.0);
        for &p in &[1e-2, 1e-3, 1e-5] {
            let alpha = inv_q(p);
            let m = gaussian_admissible_count(mu, sd, alpha, c);
            let lhs = q((c - m * mu) / (sd * m.sqrt()));
            assert!((lhs / p - 1.0).abs() < 1e-9, "p={p}: M={m}, Q(...)={lhs}");
        }
    }

    #[test]
    fn matches_heavy_traffic_approximation() {
        // eqn (5): m* ≈ n − (σ α/μ)√n for large n.
        let (mu, sd) = (1.0, 0.3);
        let p = 1e-3;
        let alpha = inv_q(p);
        let n = 10_000.0;
        let m = gaussian_admissible_count(mu, sd, alpha, n * mu);
        let approx = n - sd * alpha / mu * n.sqrt();
        assert!(
            (m - approx).abs() < 3.0,
            "closed form {m} vs heavy-traffic approx {approx}"
        );
    }

    #[test]
    fn zero_variance_gives_fluid_limit() {
        assert!((gaussian_admissible_count(2.0, 0.0, 3.0, 100.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn nonpositive_mean_fails_safe() {
        assert_eq!(gaussian_admissible_count(0.0, 1.0, 3.0, 100.0), 0.0);
        assert_eq!(gaussian_admissible_count(-1.0, 1.0, 3.0, 100.0), 0.0);
    }

    #[test]
    fn monotonicity_in_parameters() {
        let base = gaussian_admissible_count(1.0, 0.3, 3.0, 100.0);
        // More capacity -> more flows.
        assert!(gaussian_admissible_count(1.0, 0.3, 3.0, 120.0) > base);
        // Burstier traffic -> fewer flows.
        assert!(gaussian_admissible_count(1.0, 0.5, 3.0, 100.0) < base);
        // Stricter QoS (larger alpha) -> fewer flows.
        assert!(gaussian_admissible_count(1.0, 0.3, 4.0, 100.0) < base);
        // Bigger flows -> fewer of them.
        assert!(gaussian_admissible_count(1.5, 0.3, 3.0, 100.0) < base);
    }

    #[test]
    fn arc_policy_delegates_bit_exactly() {
        use std::sync::Arc;
        let p = CertaintyEquivalent::from_probability(1e-3);
        let shared: Arc<dyn AdmissionPolicy> =
            Arc::new(CertaintyEquivalent::from_probability(1e-3));
        let est = Estimate {
            mean: 1.0,
            variance: 0.09,
        };
        assert_eq!(
            p.admissible_count(est, 100.0).to_bits(),
            shared.admissible_count(est, 100.0).to_bits()
        );
        assert_eq!(
            p.admit(est, 100.0, 50),
            Arc::clone(&shared).admit(est, 100.0, 50)
        );
    }

    #[test]
    fn negative_alpha_admits_beyond_fluid_limit() {
        // p > 1/2 (α < 0) means tolerating overflow more often than not:
        // M exceeds c/μ.
        let m = gaussian_admissible_count(1.0, 0.3, -1.0, 100.0);
        assert!(m > 100.0);
    }
}
