//! Peak-rate admission — the classical zero-multiplexing baseline.
//!
//! Allocates every flow its declared peak rate: `M = c / peak`. Never
//! overflows (as long as declarations are honest) but wastes the entire
//! statistical-multiplexing gain the paper's introduction motivates;
//! the examples and utilization benches use it as the lower bound on
//! achievable utilization.

use super::AdmissionPolicy;
use crate::estimators::Estimate;

/// Peak-rate allocation with a declared per-flow peak.
#[derive(Debug, Clone, Copy)]
pub struct PeakRate {
    peak: f64,
}

impl PeakRate {
    /// Creates the policy for a declared per-flow peak rate.
    ///
    /// # Panics
    /// Panics unless `peak > 0`.
    pub fn new(peak: f64) -> Self {
        assert!(peak > 0.0, "peak rate must be positive, got {peak}");
        PeakRate { peak }
    }

    /// The declared peak rate.
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

impl AdmissionPolicy for PeakRate {
    fn admissible_count(&self, _est: Estimate, capacity: f64) -> f64 {
        capacity / self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divides_capacity_by_peak() {
        let p = PeakRate::new(2.5);
        assert!((p.admissible_count(Estimate::default(), 100.0) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_measurements() {
        let p = PeakRate::new(1.0);
        let a = p.admissible_count(Estimate::new(0.1, 0.0), 50.0);
        let b = p.admissible_count(Estimate::new(0.9, 5.0), 50.0);
        assert_eq!(a, b);
    }

    #[test]
    fn admits_far_fewer_than_gaussian_on_bursty_traffic() {
        use crate::admission::CertaintyEquivalent;
        // Flows with mean 1, sd 0.3, peak ≈ mean + 3 sd = 1.9.
        let peak = PeakRate::new(1.9);
        let gauss = CertaintyEquivalent::from_probability(1e-3);
        let est = Estimate::new(1.0, 0.09);
        let m_peak = peak.admissible_count(est, 1000.0);
        let m_gauss = gauss.admissible_count(est, 1000.0);
        assert!(
            m_gauss > 1.5 * m_peak,
            "multiplexing gain missing: gauss {m_gauss} vs peak {m_peak}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_zero_peak() {
        PeakRate::new(0.0);
    }
}
