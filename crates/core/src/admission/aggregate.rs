//! Aggregate Gaussian admission test for heterogeneous flows (§5.4).
//!
//! Instead of counting interchangeable flows, this form asks directly:
//! with aggregate load `N(m, v)` and a candidate flow adding
//! `(μ_new, σ²_new)`, is `Q[(c − m − μ_new)/√(v + σ²_new)] ≤ p_ce`?
//! It reduces to the homogeneous criterion when all flows are identical.

use crate::estimators::heterogeneous::AggregateEstimate;
use crate::params::{FlowStats, QosTarget};
use mbac_num::q;

/// Aggregate-form certainty-equivalent admission.
#[derive(Debug, Clone, Copy)]
pub struct AggregateGaussian {
    target: QosTarget,
}

impl AggregateGaussian {
    /// Creates the aggregate test with certainty-equivalent target.
    pub fn new(target: QosTarget) -> Self {
        AggregateGaussian { target }
    }

    /// The overflow probability the link would have *after* admitting a
    /// candidate with the given per-flow statistics.
    pub fn post_admission_overflow(
        &self,
        agg: AggregateEstimate,
        candidate: FlowStats,
        capacity: f64,
    ) -> f64 {
        let mean = agg.mean + candidate.mean;
        let var = (agg.variance + candidate.variance).max(0.0);
        if var == 0.0 {
            return if mean > capacity { 1.0 } else { 0.0 };
        }
        q((capacity - mean) / var.sqrt())
    }

    /// Whether the candidate flow may be admitted.
    ///
    /// Decision-identical to `post_admission_overflow(..) ≤ p`, but the
    /// common case costs one sqrt and one compare: since `Q` is strictly
    /// decreasing, `Q(x) ≤ p ⟺ x ≥ Q⁻¹(p)`, and `α = Q⁻¹(p)` is cached
    /// in the [`QosTarget`]. Only within a narrow band of the threshold
    /// (far wider than `inv_q`'s ~1e-13 relative error) does it fall
    /// back to evaluating the tail exactly as before.
    pub fn admit(&self, agg: AggregateEstimate, candidate: FlowStats, capacity: f64) -> bool {
        let mean = agg.mean + candidate.mean;
        let var = (agg.variance + candidate.variance).max(0.0);
        if var == 0.0 {
            // Fluid check: overflow is 1 or 0, and p ∈ (0, 1).
            return mean <= capacity;
        }
        let x = (capacity - mean) / var.sqrt();
        let alpha = self.target.alpha();
        if (x - alpha).abs() > 1e-9 * (1.0 + alpha.abs()) {
            x >= alpha
        } else {
            q(x) <= self.target.p
        }
    }

    /// The configured target.
    pub fn target(&self) -> QosTarget {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionPolicy, CertaintyEquivalent};
    use crate::estimators::Estimate;

    fn agg(mean: f64, variance: f64, flows: usize) -> AggregateEstimate {
        AggregateEstimate {
            mean,
            variance,
            flows,
        }
    }

    #[test]
    fn admits_when_room_rejects_when_full() {
        let ctl = AggregateGaussian::new(QosTarget::new(1e-3));
        let cand = FlowStats::from_mean_sd(1.0, 0.3);
        assert!(ctl.admit(agg(50.0, 4.5, 50), cand, 100.0));
        assert!(!ctl.admit(agg(99.0, 9.0, 99), cand, 100.0));
    }

    #[test]
    fn reduces_to_homogeneous_criterion() {
        // With m identical flows the aggregate test flips from admit to
        // reject exactly at the homogeneous M of eqn (42).
        let flow = FlowStats::from_mean_sd(1.0, 0.3);
        let target = QosTarget::new(1e-3);
        let c = 100.0;
        let hom = CertaintyEquivalent::new(target);
        let m = hom.admissible_count(Estimate::from(flow), c).floor() as usize;
        let ctl = AggregateGaussian::new(target);
        // m-1 flows in the system: admitting the m-th must pass.
        let below = agg(
            (m - 1) as f64 * flow.mean,
            (m - 1) as f64 * flow.variance,
            m - 1,
        );
        assert!(ctl.admit(below, flow, c), "should admit flow #{m}");
        // m flows in the system: admitting one more must fail.
        let at = agg(m as f64 * flow.mean, m as f64 * flow.variance, m);
        assert!(!ctl.admit(at, flow, c), "should reject flow #{}", m + 1);
    }

    #[test]
    fn deterministic_aggregate_edge() {
        let ctl = AggregateGaussian::new(QosTarget::new(1e-3));
        let cbr = FlowStats::new(10.0, 0.0);
        // Zero variance everywhere: pure fluid check.
        assert!(ctl.admit(agg(80.0, 0.0, 8), cbr, 100.0));
        assert!(!ctl.admit(agg(95.0, 0.0, 9), cbr, 100.0));
    }

    #[test]
    fn big_flows_rejected_before_small_ones() {
        let ctl = AggregateGaussian::new(QosTarget::new(1e-3));
        let state = agg(90.0, 9.0, 90);
        let small = FlowStats::from_mean_sd(0.5, 0.1);
        let big = FlowStats::from_mean_sd(8.0, 2.0);
        assert!(ctl.admit(state, small, 100.0));
        assert!(!ctl.admit(state, big, 100.0));
    }
}
