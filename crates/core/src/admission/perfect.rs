//! The perfect-knowledge admission controller (paper §3.1, eqn (4)).
//!
//! Knows the true flow statistics a priori and therefore always admits
//! exactly `m*` flows. Its steady-state overflow probability equals the
//! target `p_q` by construction; the gap between it and the
//! certainty-equivalent MBAC *is* the cost of measurement uncertainty.

use super::{gaussian_admissible_count, AdmissionPolicy};
use crate::estimators::Estimate;
use crate::params::{FlowStats, QosTarget};

/// Admission with a-priori knowledge of the true flow statistics.
#[derive(Debug, Clone, Copy)]
pub struct PerfectKnowledge {
    stats: FlowStats,
    target: QosTarget,
}

impl PerfectKnowledge {
    /// Creates the ideal controller for known statistics and QoS target.
    pub fn new(stats: FlowStats, target: QosTarget) -> Self {
        PerfectKnowledge { stats, target }
    }

    /// The number of admissible flows `m*` for a given capacity — a
    /// deterministic quantity for this controller.
    pub fn m_star(&self, capacity: f64) -> f64 {
        gaussian_admissible_count(
            self.stats.mean,
            self.stats.std_dev(),
            self.target.alpha(),
            capacity,
        )
    }

    /// The configured QoS target.
    pub fn target(&self) -> QosTarget {
        self.target
    }

    /// The known flow statistics.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }
}

impl AdmissionPolicy for PerfectKnowledge {
    fn admissible_count(&self, _est: Estimate, capacity: f64) -> f64 {
        // Measurements are ignored: this controller knows the truth.
        self.m_star(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_estimates() {
        let pk = PerfectKnowledge::new(FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(1e-3));
        let wild = Estimate::new(17.0, 400.0);
        let sane = Estimate::new(1.0, 0.09);
        assert_eq!(
            pk.admissible_count(wild, 100.0),
            pk.admissible_count(sane, 100.0)
        );
    }

    #[test]
    fn m_star_leaves_safety_margin() {
        let pk = PerfectKnowledge::new(FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(1e-3));
        let m = pk.m_star(100.0);
        // eqn (5): m* ≈ n − (σ α/μ) √n = 100 − 0.3·3.09·10 ≈ 90.7.
        assert!(m > 85.0 && m < 95.0, "m* = {m}");
    }

    #[test]
    fn admit_stops_at_m_star() {
        let pk = PerfectKnowledge::new(FlowStats::from_mean_sd(1.0, 0.3), QosTarget::new(1e-3));
        let est = Estimate::new(1.0, 0.09);
        let m = pk.m_star(100.0).floor() as usize;
        assert!(pk.admit(est, 100.0, m - 1));
        assert!(!pk.admit(est, 100.0, m));
    }
}
