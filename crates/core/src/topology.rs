//! The network topology model: links with capacities, routes as
//! link-id paths, and the [`PathAdmission`] composition layer that
//! lifts the paper's single-link admission criteria to multi-hop
//! routes.
//!
//! A [`Topology`] is deliberately minimal — bufferless links identified
//! by [`LinkId`], each with a capacity, and routes ([`RouteId`]) that
//! are ordered hop lists. Flows are pinned to routes: admitting one
//! flow on a route consumes one unit of occupancy on *every* hop.
//!
//! # Path admission semantics
//!
//! [`PathAdmission::decide`] admits a flow only if every hop's
//! controller accepts ([`hop_admits`]: measured admissible count `m̂`
//! versus occupancy-plus-one, the same test the single-link plane
//! applies). Occupancy commits are **all-or-nothing**: hops are
//! reserved in route order, and a rejection at hop `k` rolls back the
//! reservations at hops `< k`, so a rejected request never leaks
//! provisional load into upstream links. Because the per-hop acceptance
//! test reads only estimator state (whose decision memo is bit-stable —
//! see `crates/sim/tests/decision_memo.rs`) and the rollback restores
//! the exact pre-ask occupancy, a rejected path attempt is
//! indistinguishable, bit for bit, from never having asked.

use std::fmt;

// ---------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------

/// Identifier of one bufferless link. A newtype rather than a bare
/// index: shard indices, flow ids and link ids all look like integers,
/// and the routed two-phase commit makes confusing them dangerous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The link id as a container index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The link id widened for hashing (shard placement).
    #[inline]
    pub fn as_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Identifier of one route (an ordered hop list) within a
/// [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub u32);

impl RouteId {
    /// The route id as a container index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route{}", self.0)
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A rejected topology description.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A topology needs at least one link.
    NoLinks,
    /// A topology needs at least one route.
    NoRoutes,
    /// A link capacity was zero, negative or NaN.
    BadCapacity {
        /// The offending link.
        link: LinkId,
        /// The rejected value.
        value: f64,
    },
    /// A route with no hops admits nothing and controls nothing.
    EmptyRoute {
        /// The offending route.
        route: RouteId,
    },
    /// A route referenced a link id outside the topology.
    UnknownLink {
        /// The offending route.
        route: RouteId,
        /// The out-of-range link id.
        link: LinkId,
    },
    /// A route visited the same link twice; occupancy accounting
    /// assumes each hop is a distinct link.
    DuplicateHop {
        /// The offending route.
        route: RouteId,
        /// The repeated link id.
        link: LinkId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoLinks => write!(f, "topology must have at least one link"),
            TopologyError::NoRoutes => write!(f, "topology must have at least one route"),
            TopologyError::BadCapacity { link, value } => {
                write!(f, "{link} capacity must be positive, got {value}")
            }
            TopologyError::EmptyRoute { route } => write!(f, "{route} has no hops"),
            TopologyError::UnknownLink { route, link } => {
                write!(f, "{route} references unknown {link}")
            }
            TopologyError::DuplicateHop { route, link } => {
                write!(f, "{route} visits {link} more than once")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

/// A network of bufferless links and the routes flows may take across
/// them. Immutable once built; validation happens at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    capacities: Vec<f64>,
    routes: Vec<Box<[LinkId]>>,
}

impl Topology {
    /// Builds and validates a topology from per-link capacities and
    /// routes given as hop lists.
    pub fn new(capacities: Vec<f64>, routes: Vec<Vec<LinkId>>) -> Result<Self, TopologyError> {
        let topo = Topology {
            capacities,
            routes: routes.into_iter().map(Vec::into_boxed_slice).collect(),
        };
        topo.validate()?;
        Ok(topo)
    }

    /// The one-link convenience: a single link of `capacity` with one
    /// single-hop route — the exact shape every pre-topology layer
    /// assumed. Panics if `capacity` is not strictly positive.
    pub fn single_link(capacity: f64) -> Self {
        Topology::new(vec![capacity], vec![vec![LinkId(0)]])
            .expect("single_link: capacity must be positive")
    }

    /// The parking-lot topology: `hops` links in a row, one long route
    /// traversing all of them, plus one single-hop cross-traffic route
    /// per link. The classic multi-hop fairness/composition shape.
    /// Panics if `hops` is zero or `capacity` is not strictly positive.
    pub fn parking_lot(hops: usize, capacity: f64) -> Self {
        assert!(hops > 0, "parking_lot: need at least one hop");
        let long: Vec<LinkId> = (0..hops).map(|i| LinkId(i as u32)).collect();
        let mut routes = vec![long];
        routes.extend((0..hops).map(|i| vec![LinkId(i as u32)]));
        Topology::new(vec![capacity; hops], routes).expect("parking_lot: capacity must be positive")
    }

    /// The star topology: `legs` spoke links feeding one shared hub
    /// link (link 0). Route `i` crosses spoke `i+1` then the hub, so
    /// every route contends on the hub — maximal load correlation.
    /// Panics if `legs` is zero or `capacity` is not strictly positive.
    pub fn star(legs: usize, capacity: f64) -> Self {
        assert!(legs > 0, "star: need at least one leg");
        let routes = (0..legs)
            .map(|i| vec![LinkId(i as u32 + 1), LinkId(0)])
            .collect();
        Topology::new(vec![capacity; legs + 1], routes).expect("star: capacity must be positive")
    }

    /// Checks the invariants [`Topology::new`] enforces.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if self.capacities.is_empty() {
            return Err(TopologyError::NoLinks);
        }
        if self.routes.is_empty() {
            return Err(TopologyError::NoRoutes);
        }
        for (i, &c) in self.capacities.iter().enumerate() {
            if c <= 0.0 || c.is_nan() {
                return Err(TopologyError::BadCapacity {
                    link: LinkId(i as u32),
                    value: c,
                });
            }
        }
        for (r, hops) in self.routes.iter().enumerate() {
            let route = RouteId(r as u32);
            if hops.is_empty() {
                return Err(TopologyError::EmptyRoute { route });
            }
            for (k, &link) in hops.iter().enumerate() {
                if link.index() >= self.capacities.len() {
                    return Err(TopologyError::UnknownLink { route, link });
                }
                if hops[..k].contains(&link) {
                    return Err(TopologyError::DuplicateHop { route, link });
                }
            }
        }
        Ok(())
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.capacities.len()
    }

    /// Number of routes.
    pub fn routes(&self) -> usize {
        self.routes.len()
    }

    /// Capacity of `link`.
    #[inline]
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.capacities[link.index()]
    }

    /// The hop list of `route`, in traversal order.
    #[inline]
    pub fn route(&self, route: RouteId) -> &[LinkId] {
        &self.routes[route.index()]
    }

    /// All link ids, in index order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.capacities.len()).map(|i| LinkId(i as u32))
    }

    /// All route ids, in index order.
    pub fn route_ids(&self) -> impl Iterator<Item = RouteId> + '_ {
        (0..self.routes.len()).map(|r| RouteId(r as u32))
    }

    /// The routes whose hop list contains `link`, in route order —
    /// the flows sharing `link`'s capacity.
    pub fn routes_crossing(&self, link: LinkId) -> impl Iterator<Item = RouteId> + '_ {
        self.routes
            .iter()
            .enumerate()
            .filter(move |(_, hops)| hops.contains(&link))
            .map(|(r, _)| RouteId(r as u32))
    }

    /// The position of `link` within `route`'s hop list (unique —
    /// duplicate hops are rejected at construction).
    pub fn hop_index(&self, route: RouteId, link: LinkId) -> Option<usize> {
        self.route(route).iter().position(|&l| l == link)
    }

    /// Whether every route has exactly one hop (the degenerate
    /// single-link-per-route case the legacy layers model).
    pub fn is_single_hop(&self) -> bool {
        self.routes.iter().all(|hops| hops.len() == 1)
    }
}

// ---------------------------------------------------------------------
// Path admission
// ---------------------------------------------------------------------

/// The single-hop acceptance test every layer shares: a measured
/// admissible count `m̂` accepts one more flow iff `occupancy + 1 ≤ m̂`.
/// `None` (no measurement yet — cold start) fails safe to reject.
#[inline]
pub fn hop_admits(admissible: Option<f64>, occupancy: u32) -> bool {
    admissible.is_some_and(|m| f64::from(occupancy + 1) <= m)
}

/// What [`PathAdmission`] consults per hop: the measured admissible
/// flow count of one link at its capacity. Implemented over whatever
/// holds the per-link estimators (e.g. a slice of
/// `mbac_sim::MbacController`).
pub trait HopOracle {
    /// The admissible count for `link` at `capacity`, or `None` when
    /// the link has no measurement yet.
    fn admissible(&mut self, link: LinkId, capacity: f64) -> Option<f64>;
}

impl<F> HopOracle for F
where
    F: FnMut(LinkId, f64) -> Option<f64>,
{
    fn admissible(&mut self, link: LinkId, capacity: f64) -> Option<f64> {
        self(link, capacity)
    }
}

/// One hop's view of a path decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopReport {
    /// The hop's link.
    pub link: LinkId,
    /// The admissible count the hop's controller reported (`None` on a
    /// cold start).
    pub admissible: Option<f64>,
    /// The link's occupancy *after* the decision settled (committed on
    /// admit, rolled back on reject).
    pub occupancy: u32,
}

/// The outcome of one path admission attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDecision {
    /// The route the request addressed.
    pub route: RouteId,
    /// Admit (`true`) only if every hop accepted.
    pub admit: bool,
    /// The first rejecting hop's index within the route, when rejected.
    /// Hops past it were never consulted (serial short-circuit).
    pub reject_hop: Option<u8>,
    /// Per-hop reports, in route order, up to and including the
    /// rejecting hop.
    pub hops: Vec<HopReport>,
}

/// Per-link occupancy accounting with all-or-nothing multi-hop
/// commit/rollback — the composition layer lifting single-link
/// admission to routes.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAdmission {
    occupancy: Vec<u32>,
}

impl PathAdmission {
    /// Zeroed occupancy for `links` links.
    pub fn new(links: usize) -> Self {
        PathAdmission {
            occupancy: vec![0; links],
        }
    }

    /// Zeroed occupancy sized for `topology`.
    pub fn for_topology(topology: &Topology) -> Self {
        PathAdmission::new(topology.links())
    }

    /// The current occupancy of `link`.
    #[inline]
    pub fn occupancy(&self, link: LinkId) -> u32 {
        self.occupancy[link.index()]
    }

    /// Resynchronizes `link`'s occupancy to a measured flow count (the
    /// plane's convention: measurements are ground truth, admits are
    /// provisional increments between them).
    pub fn sync(&mut self, link: LinkId, measured: u32) {
        self.occupancy[link.index()] = measured;
    }

    /// Releases `departed` flows from every hop of `route` (flow
    /// departures free capacity along the whole path). Saturates at
    /// zero: a measurement resync may already have absorbed the
    /// departure.
    pub fn release(&mut self, topology: &Topology, route: RouteId, departed: u32) {
        for &hop in topology.route(route) {
            let occ = &mut self.occupancy[hop.index()];
            *occ = occ.saturating_sub(departed);
        }
    }

    /// Decides one admission request on `route`: consults `oracle` hop
    /// by hop in route order, reserving occupancy as it goes; on the
    /// first rejecting hop, rolls every reservation back. The returned
    /// occupancies are post-settlement (committed or restored) — a
    /// rejected attempt leaves `self` bit-identical to never asking.
    pub fn decide(
        &mut self,
        topology: &Topology,
        route: RouteId,
        oracle: &mut impl HopOracle,
    ) -> PathDecision {
        let hops = topology.route(route);
        let mut reports = Vec::with_capacity(hops.len());
        for (k, &link) in hops.iter().enumerate() {
            let admissible = oracle.admissible(link, topology.capacity(link));
            let occ = self.occupancy[link.index()];
            if hop_admits(admissible, occ) {
                // Reserve: provisional until the whole path accepts.
                self.occupancy[link.index()] = occ + 1;
                reports.push(HopReport {
                    link,
                    admissible,
                    occupancy: occ + 1,
                });
            } else {
                // All-or-nothing: roll back every reservation made at
                // hops < k and report pre-ask occupancies.
                for r in &mut reports {
                    let slot = &mut self.occupancy[r.link.index()];
                    *slot -= 1;
                    r.occupancy -= 1;
                }
                reports.push(HopReport {
                    link,
                    admissible,
                    occupancy: occ,
                });
                return PathDecision {
                    route,
                    admit: false,
                    reject_hop: Some(k as u8),
                    hops: reports,
                };
            }
        }
        PathDecision {
            route,
            admit: true,
            reject_hop: None,
            hops: reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_shapes() {
        let single = Topology::single_link(10.0);
        assert_eq!(single.links(), 1);
        assert_eq!(single.routes(), 1);
        assert!(single.is_single_hop());
        assert_eq!(single.route(RouteId(0)), &[LinkId(0)]);

        let pl = Topology::parking_lot(3, 8.0);
        assert_eq!(pl.links(), 3);
        assert_eq!(pl.routes(), 4);
        assert_eq!(pl.route(RouteId(0)), &[LinkId(0), LinkId(1), LinkId(2)]);
        assert_eq!(pl.route(RouteId(2)), &[LinkId(1)]);
        assert!(!pl.is_single_hop());
        // Every link carries the long route plus its own cross traffic.
        for link in pl.link_ids() {
            let crossing: Vec<RouteId> = pl.routes_crossing(link).collect();
            assert_eq!(crossing.len(), 2);
            assert_eq!(crossing[0], RouteId(0));
        }

        let star = Topology::star(4, 8.0);
        assert_eq!(star.links(), 5);
        assert_eq!(star.routes(), 4);
        // Every route contends on the hub.
        assert_eq!(star.routes_crossing(LinkId(0)).count(), 4);
        for r in star.route_ids() {
            assert_eq!(star.route(r).len(), 2);
            assert_eq!(star.route(r)[1], LinkId(0));
        }
    }

    #[test]
    fn validation_rejects_malformed_topologies() {
        assert_eq!(
            Topology::new(vec![], vec![vec![LinkId(0)]]).unwrap_err(),
            TopologyError::NoLinks
        );
        assert_eq!(
            Topology::new(vec![1.0], vec![]).unwrap_err(),
            TopologyError::NoRoutes
        );
        assert!(matches!(
            Topology::new(vec![1.0, -2.0], vec![vec![LinkId(0)]]).unwrap_err(),
            TopologyError::BadCapacity {
                link: LinkId(1),
                ..
            }
        ));
        assert_eq!(
            Topology::new(vec![1.0], vec![vec![]]).unwrap_err(),
            TopologyError::EmptyRoute { route: RouteId(0) }
        );
        assert_eq!(
            Topology::new(vec![1.0], vec![vec![LinkId(3)]]).unwrap_err(),
            TopologyError::UnknownLink {
                route: RouteId(0),
                link: LinkId(3)
            }
        );
        assert_eq!(
            Topology::new(vec![1.0, 1.0], vec![vec![LinkId(1), LinkId(1)]]).unwrap_err(),
            TopologyError::DuplicateHop {
                route: RouteId(0),
                link: LinkId(1)
            }
        );
    }

    #[test]
    fn hop_admits_matches_the_single_link_rule() {
        assert!(!hop_admits(None, 0), "cold start fails safe");
        assert!(hop_admits(Some(5.0), 4));
        assert!(!hop_admits(Some(5.0), 5));
        assert!(hop_admits(Some(5.0), 3));
    }

    /// A three-hop route where every hop accepts: all three occupancies
    /// commit together.
    #[test]
    fn decide_commits_every_hop_on_admit() {
        let topo = Topology::new(
            vec![10.0, 10.0, 10.0],
            vec![vec![LinkId(0), LinkId(1), LinkId(2)]],
        )
        .unwrap();
        let mut path = PathAdmission::for_topology(&topo);
        let mut oracle = |_: LinkId, capacity: f64| Some(capacity);
        let d = path.decide(&topo, RouteId(0), &mut oracle);
        assert!(d.admit);
        assert_eq!(d.reject_hop, None);
        assert_eq!(d.hops.len(), 3);
        for (r, link) in d.hops.iter().zip(topo.link_ids()) {
            assert_eq!(r.link, link);
            assert_eq!(r.occupancy, 1);
            assert_eq!(path.occupancy(link), 1);
        }
    }

    /// Rejection at hop 2 rolls hops 0..1 back: no provisional load
    /// leaks upstream, and the reported occupancies are the pre-ask
    /// values.
    #[test]
    fn decide_rolls_back_on_mid_path_reject() {
        let topo = Topology::new(
            vec![10.0, 10.0, 1.0],
            vec![vec![LinkId(0), LinkId(1), LinkId(2)]],
        )
        .unwrap();
        let mut path = PathAdmission::for_topology(&topo);
        path.sync(LinkId(0), 3);
        path.sync(LinkId(2), 1);
        // Capacity-as-admissible: link 2 (capacity 1, occupancy 1)
        // rejects the second flow.
        let mut oracle = |_: LinkId, capacity: f64| Some(capacity);
        let d = path.decide(&topo, RouteId(0), &mut oracle);
        assert!(!d.admit);
        assert_eq!(d.reject_hop, Some(2));
        assert_eq!(d.hops.len(), 3);
        assert_eq!(d.hops[0].occupancy, 3);
        assert_eq!(d.hops[1].occupancy, 0);
        assert_eq!(d.hops[2].occupancy, 1);
        assert_eq!(path.occupancy(LinkId(0)), 3, "rollback must restore");
        assert_eq!(path.occupancy(LinkId(1)), 0);
        assert_eq!(path.occupancy(LinkId(2)), 1);
    }

    /// A cold hop (no measurement) fails safe and never consults later
    /// hops.
    #[test]
    fn cold_hop_short_circuits() {
        let topo = Topology::parking_lot(3, 10.0);
        let mut path = PathAdmission::for_topology(&topo);
        let mut asked = Vec::new();
        let mut oracle = |link: LinkId, _: f64| {
            asked.push(link);
            None
        };
        let d = path.decide(&topo, RouteId(0), &mut oracle);
        assert!(!d.admit);
        assert_eq!(d.reject_hop, Some(0));
        assert_eq!(asked, vec![LinkId(0)]);
    }

    #[test]
    fn release_frees_the_whole_path() {
        let topo = Topology::parking_lot(2, 10.0);
        let mut path = PathAdmission::for_topology(&topo);
        let mut oracle = |_: LinkId, capacity: f64| Some(capacity);
        assert!(path.decide(&topo, RouteId(0), &mut oracle).admit);
        assert!(path.decide(&topo, RouteId(0), &mut oracle).admit);
        path.release(&topo, RouteId(0), 1);
        assert_eq!(path.occupancy(LinkId(0)), 1);
        assert_eq!(path.occupancy(LinkId(1)), 1);
        // Saturating: a resync may already have absorbed the departure.
        path.release(&topo, RouteId(0), 5);
        assert_eq!(path.occupancy(LinkId(0)), 0);
    }
}
