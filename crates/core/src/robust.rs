//! The robust MBAC design procedure (paper §5.3).
//!
//! Two engineering rules fall out of the framework:
//!
//! 1. **Memory window**: set `T_m = T̃_h = T_h/√n`. In the *masking
//!    regime* (`T_c ≪ T̃_h`) this smooths estimation error enough that
//!    the (unknown!) traffic correlation structure is irrelevant; in the
//!    *repair regime* (`T_c ≫ T̃_h`) departures fix admission mistakes
//!    before they bite. Either way the QoS holds without knowing `T_c`.
//! 2. **Adjusted target**: run the certainty-equivalent criterion at the
//!    `p_ce` obtained by inverting the overflow formula (worst-cased
//!    over a range of plausible `T_c`), not at the raw `p_q`.
//!
//! [`RobustDesign`] packages both rules into a ready-to-run
//! configuration.

use crate::params::{FlowStats, QosTarget};
use crate::theory::continuous::ContinuousModel;
use crate::theory::invert::{invert_pce, InvertMethod};
use mbac_num::q;

/// Inputs to the design procedure.
#[derive(Debug, Clone, Copy)]
pub struct DesignInputs {
    /// Link size `n = c/μ`.
    pub n: f64,
    /// Per-flow statistics (only `σ/μ` matters for the design).
    pub flow: FlowStats,
    /// Mean flow holding time `T_h` (easy to estimate in practice, §5.3).
    pub holding_time: f64,
    /// QoS target `p_q`.
    pub qos: QosTarget,
    /// Range of traffic correlation time-scales to be robust against;
    /// the design worst-cases `p_ce` over `[t_c_min, t_c_max]`.
    pub t_c_range: (f64, f64),
}

/// A complete robust-MBAC configuration.
#[derive(Debug, Clone, Copy)]
pub struct RobustDesign {
    /// Memory window to configure the estimator with (`= T̃_h`).
    pub t_m: f64,
    /// The critical time-scale `T̃_h = T_h/√n`.
    pub t_h_tilde: f64,
    /// Adjusted certainty-equivalent safety factor `α_ce`.
    pub alpha_ce: f64,
    /// Adjusted certainty-equivalent target `p_ce = Q(α_ce)`.
    pub p_ce: f64,
    /// The correlation time-scale at which the worst case was attained.
    pub worst_t_c: f64,
    /// Predicted overflow probability at the design point (≤ `p_q` by
    /// construction, up to formula accuracy).
    pub predicted_pf: f64,
}

impl RobustDesign {
    /// Runs the §5.3 procedure: `T_m = T̃_h`, then `p_ce` by inverting
    /// eqn (37) and worst-casing over a log-grid of `T_c` values.
    ///
    /// # Panics
    /// Panics on nonsensical inputs (non-positive sizes or times, empty
    /// `T_c` range).
    pub fn design(inp: &DesignInputs) -> RobustDesign {
        assert!(inp.n > 0.0 && inp.holding_time > 0.0);
        let (lo, hi) = inp.t_c_range;
        assert!(lo > 0.0 && hi >= lo, "invalid T_c range");
        let t_h_tilde = inp.holding_time / inp.n.sqrt();
        let t_m = t_h_tilde;
        let cov = inp.flow.cov();
        // Worst-case α_ce over a log grid of T_c.
        let grid = 25usize;
        let mut worst_alpha = inp.qos.alpha(); // never less conservative than p_q
        let mut worst_t_c = lo;
        for k in 0..=grid {
            let t_c = if hi == lo {
                lo
            } else {
                lo * (hi / lo).powf(k as f64 / grid as f64)
            };
            let model = ContinuousModel::new(cov, t_h_tilde, t_c);
            match invert_pce(&model, t_m, inp.qos.p, InvertMethod::General) {
                Ok(adj) => {
                    if adj.alpha_ce > worst_alpha {
                        worst_alpha = adj.alpha_ce;
                        worst_t_c = t_c;
                    }
                }
                Err(_) => {
                    // Repair-dominated at this T_c: no adjustment needed.
                }
            }
        }
        // Predicted p_f at the worst-case T_c with the chosen α_ce.
        let predicted =
            ContinuousModel::new(cov, t_h_tilde, worst_t_c).pf_with_memory(worst_alpha, t_m);
        RobustDesign {
            t_m,
            t_h_tilde,
            alpha_ce: worst_alpha,
            p_ce: q(worst_alpha),
            worst_t_c,
            predicted_pf: predicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> DesignInputs {
        DesignInputs {
            n: 1000.0,
            flow: FlowStats::from_mean_sd(1.0, 0.3),
            holding_time: 1000.0,
            qos: QosTarget::new(1e-3),
            t_c_range: (0.1, 10.0),
        }
    }

    #[test]
    fn window_rule_is_critical_timescale() {
        let d = RobustDesign::design(&inputs());
        assert!((d.t_m - 1000.0 / 1000.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(d.t_m, d.t_h_tilde);
    }

    #[test]
    fn design_is_conservative() {
        let d = RobustDesign::design(&inputs());
        assert!(d.p_ce <= 1e-3, "p_ce {} must not exceed p_q", d.p_ce);
        assert!(d.alpha_ce >= QosTarget::new(1e-3).alpha());
    }

    #[test]
    fn predicted_pf_meets_target_across_tc_range() {
        let inp = inputs();
        let d = RobustDesign::design(&inp);
        // Validate the design against the *general* formula on a finer
        // grid than the designer used.
        for k in 0..=60 {
            let t_c = 0.1 * (100.0f64).powf(k as f64 / 60.0);
            let model = ContinuousModel::new(inp.flow.cov(), d.t_h_tilde, t_c);
            let pf = model.pf_with_memory(d.alpha_ce, d.t_m);
            assert!(
                pf <= 1.05 * inp.qos.p,
                "T_c = {t_c}: pf {pf} exceeds target {}",
                inp.qos.p
            );
        }
    }

    #[test]
    fn larger_system_needs_shorter_window() {
        let mut big = inputs();
        big.n = 100_000.0;
        let d_small = RobustDesign::design(&inputs());
        let d_big = RobustDesign::design(&big);
        assert!(d_big.t_m < d_small.t_m);
    }

    #[test]
    fn tighter_qos_means_larger_alpha() {
        let mut strict = inputs();
        strict.qos = QosTarget::new(1e-5);
        let d_lax = RobustDesign::design(&inputs());
        let d_strict = RobustDesign::design(&strict);
        assert!(d_strict.alpha_ce > d_lax.alpha_ce);
    }

    #[test]
    fn degenerate_tc_range_works() {
        let mut one_point = inputs();
        one_point.t_c_range = (1.0, 1.0);
        let d = RobustDesign::design(&one_point);
        assert!(d.worst_t_c == 1.0);
        assert!(d.predicted_pf <= 1.05e-3);
    }
}
