//! Utility-based QoS (the paper's §7 first future-work item,
//! implemented).
//!
//! §7: "The QoS metric used here — the probability that a flow cannot
//! get at least its target bandwidth — is extreme in the sense that it
//! does not account for the fact that getting part of that target
//! bandwidth is still useful to an adaptive application. We are
//! therefore working on a generalization of the QoS metric based on
//! utility functions, inspired by Shenker's work."
//!
//! This module supplies that generalization. During overload the link
//! shares capacity proportionally, so each flow receives the *share*
//! `min(1, c/S_t)` of its demand; a [`UtilityFunction`] maps the share
//! to perceived quality in `[0, 1]`, and the QoS metric becomes the
//! **expected utility loss** `ε = 1 − E[U(share)]`. The classical
//! overflow probability is recovered exactly by [`UtilityFunction::Hard`]
//! (`ε = p_f`), and for adaptive applications the same link can carry
//! visibly more flows at equal perceived quality — quantified by
//! [`admissible_flows_utility`] and the `exp_utility` experiment.

use crate::params::FlowStats;
use mbac_num::{integrate_to_inf, norm_cdf, phi, q};

/// A perceived-quality function of the received bandwidth share
/// (`share = received/requested ∈ [0, 1]`), normalized to `U(1) = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UtilityFunction {
    /// Inelastic: all-or-nothing. `U = 1{share ≥ 1}` — recovers the
    /// paper's overflow probability.
    Hard,
    /// Elastic (Shenker's concave class): `U = share^exponent` with
    /// `0 < exponent ≤ 1`.
    Elastic {
        /// Concavity: 1 = linear, → 0 = nearly indifferent to loss.
        exponent: f64,
    },
    /// Adaptive with a quality floor: useless below `min_share`, linear
    /// from `(min_share, 0)` to `(1, 1)` — e.g. layered video that
    /// needs its base layer.
    Adaptive {
        /// Share below which the application gets zero utility.
        min_share: f64,
    },
}

impl UtilityFunction {
    /// Evaluates the utility of a bandwidth share (clamped to [0, 1]).
    pub fn eval(&self, share: f64) -> f64 {
        let s = share.clamp(0.0, 1.0);
        match *self {
            UtilityFunction::Hard => {
                if s >= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UtilityFunction::Elastic { exponent } => {
                debug_assert!(exponent > 0.0 && exponent <= 1.0);
                s.powf(exponent)
            }
            UtilityFunction::Adaptive { min_share } => {
                debug_assert!((0.0..1.0).contains(&min_share));
                if s <= min_share {
                    0.0
                } else {
                    (s - min_share) / (1.0 - min_share)
                }
            }
        }
    }
}

/// Expected utility `E[U(min(1, c/S))]` when the aggregate demand is
/// Gaussian `S ~ N(mean, sd²)` on a link of the given capacity.
///
/// Evaluated as `Φ((c−m)/sd)·1 + ∫_c^∞ U(c/s) φ((s−m)/sd)/sd ds`
/// with the crate's adaptive quadrature.
pub fn expected_utility(mean: f64, sd: f64, capacity: f64, u: UtilityFunction) -> f64 {
    assert!(capacity > 0.0 && sd >= 0.0);
    if sd == 0.0 {
        return u.eval((capacity / mean).min(1.0));
    }
    let no_overload = norm_cdf((capacity - mean) / sd);
    let overload_part = integrate_to_inf(
        |s: f64| u.eval(capacity / s) * phi((s - mean) / sd) / sd,
        capacity,
        1e-12,
    )
    .value;
    (no_overload + overload_part).clamp(0.0, 1.0)
}

/// Expected utility **loss** `ε = 1 − E[U]` — the generalized QoS
/// metric. For [`UtilityFunction::Hard`] this equals the overflow
/// probability `Q((c−m)/sd)` exactly.
pub fn expected_utility_loss(mean: f64, sd: f64, capacity: f64, u: UtilityFunction) -> f64 {
    1.0 - expected_utility(mean, sd, capacity, u)
}

/// The largest number of flows `m` such that the expected utility loss
/// stays at or below `epsilon`, with i.i.d. flows of the given
/// statistics on the given capacity (aggregate `N(mμ, mσ²)` as in the
/// heavy-traffic framework). The utility-metric analogue of the
/// paper's eqn (4) admissible count.
///
/// # Panics
/// Panics unless `epsilon ∈ (0, 1)` and capacity is positive.
pub fn admissible_flows_utility(
    flow: FlowStats,
    capacity: f64,
    epsilon: f64,
    u: UtilityFunction,
) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(capacity > 0.0);
    let loss =
        |m: f64| expected_utility_loss(m * flow.mean, (m * flow.variance).sqrt(), capacity, u);
    // Loss is increasing in m; bracket between 0 and a point that
    // certainly violates (twice the fluid limit).
    let hi = 2.0 * capacity / flow.mean + 2.0;
    if loss(hi) <= epsilon {
        return hi; // pathological: even gross overload satisfies ε
    }
    mbac_num::brent(|m| loss(m.max(1e-9)) - epsilon, 1e-9, hi, 1e-9, 300)
        .map(|r| r.x)
        .unwrap_or(0.0)
}

/// Closed-form check value: with the hard utility the loss is the
/// Gaussian tail. Exposed for tests/benches.
pub fn hard_loss_reference(mean: f64, sd: f64, capacity: f64) -> f64 {
    if sd == 0.0 {
        return if mean > capacity { 1.0 } else { 0.0 };
    }
    q((capacity - mean) / sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilities_are_normalized_and_monotone() {
        for u in [
            UtilityFunction::Hard,
            UtilityFunction::Elastic { exponent: 0.5 },
            UtilityFunction::Adaptive { min_share: 0.6 },
        ] {
            assert_eq!(u.eval(1.0), 1.0, "{u:?}");
            assert_eq!(u.eval(0.0), 0.0, "{u:?}");
            let mut last = -1.0;
            for k in 0..=20 {
                let v = u.eval(k as f64 / 20.0);
                assert!(v >= last - 1e-12, "{u:?} not monotone at {k}");
                last = v;
            }
        }
    }

    #[test]
    fn hard_utility_recovers_overflow_probability() {
        for &(m, sd, c) in &[(90.0, 5.0, 100.0), (98.0, 4.0, 100.0), (50.0, 10.0, 100.0)] {
            let loss = expected_utility_loss(m, sd, c, UtilityFunction::Hard);
            let pf = hard_loss_reference(m, sd, c);
            assert!(
                (loss - pf).abs() < 1e-9,
                "loss {loss} vs pf {pf} at ({m},{sd},{c})"
            );
        }
    }

    #[test]
    fn adaptive_apps_lose_less_than_inelastic() {
        let (m, sd, c) = (98.0, 4.0, 100.0);
        let hard = expected_utility_loss(m, sd, c, UtilityFunction::Hard);
        let elastic = expected_utility_loss(m, sd, c, UtilityFunction::Elastic { exponent: 0.5 });
        let adaptive =
            expected_utility_loss(m, sd, c, UtilityFunction::Adaptive { min_share: 0.5 });
        assert!(elastic < hard, "elastic {elastic} vs hard {hard}");
        assert!(adaptive < hard, "adaptive {adaptive} vs hard {hard}");
    }

    #[test]
    fn utility_loss_increases_with_load() {
        let u = UtilityFunction::Elastic { exponent: 0.7 };
        let mut last = 0.0;
        for &m in &[80.0, 90.0, 95.0, 100.0, 110.0] {
            let loss = expected_utility_loss(m, 5.0, 100.0, u);
            assert!(loss > last, "loss must grow with load: {loss} at m={m}");
            last = loss;
        }
    }

    #[test]
    fn deterministic_demand_edge_cases() {
        let u = UtilityFunction::Elastic { exponent: 1.0 };
        // Exactly fits: no loss.
        assert_eq!(expected_utility_loss(100.0, 0.0, 100.0, u), 0.0);
        // 25% overload, linear utility: share 0.8 → loss 0.2.
        let loss = expected_utility_loss(125.0, 0.0, 100.0, u);
        assert!((loss - 0.2).abs() < 1e-12);
    }

    #[test]
    fn admissible_count_solves_the_loss_equation() {
        let flow = FlowStats::from_mean_sd(1.0, 0.3);
        let u = UtilityFunction::Elastic { exponent: 0.5 };
        let eps = 1e-3;
        let m = admissible_flows_utility(flow, 100.0, eps, u);
        let realized = expected_utility_loss(m * flow.mean, (m * flow.variance).sqrt(), 100.0, u);
        assert!(
            (realized / eps - 1.0).abs() < 1e-4,
            "m={m}, realized {realized}"
        );
    }

    #[test]
    fn adaptive_apps_admit_more_flows_at_equal_loss() {
        // The §7 question, answered: at the same ε, elastic utilities
        // admit more flows than the hard (overflow-probability) metric.
        let flow = FlowStats::from_mean_sd(1.0, 0.3);
        let eps = 1e-3;
        let m_hard = admissible_flows_utility(flow, 100.0, eps, UtilityFunction::Hard);
        let m_elastic =
            admissible_flows_utility(flow, 100.0, eps, UtilityFunction::Elastic { exponent: 0.5 });
        // Hard metric must agree with the eqn (4) Gaussian count.
        let gauss =
            crate::admission::gaussian_admissible_count(1.0, 0.3, mbac_num::inv_q(eps), 100.0);
        assert!(
            (m_hard - gauss).abs() < 0.5,
            "m_hard {m_hard} vs gaussian {gauss}"
        );
        assert!(
            m_elastic > m_hard + 1.0,
            "elastic {m_elastic} should beat hard {m_hard}"
        );
    }

    #[test]
    fn floor_utility_between_hard_and_elastic() {
        let flow = FlowStats::from_mean_sd(1.0, 0.3);
        let eps = 1e-3;
        let m_hard = admissible_flows_utility(flow, 100.0, eps, UtilityFunction::Hard);
        let m_floor = admissible_flows_utility(
            flow,
            100.0,
            eps,
            UtilityFunction::Adaptive { min_share: 0.9 },
        );
        let m_elastic =
            admissible_flows_utility(flow, 100.0, eps, UtilityFunction::Elastic { exponent: 0.5 });
        assert!(
            m_hard <= m_floor + 0.5 && m_floor <= m_elastic + 0.5,
            "ordering: hard {m_hard} ≤ floor {m_floor} ≤ elastic {m_elastic}"
        );
    }
}
