//! Shared parameter types: per-flow statistics, QoS targets, and the
//! system description used by admission criteria and theory formulas.

use mbac_num::{inv_q, q};

/// First- and second-order statistics of a single flow's stationary
/// bandwidth process: mean `μ` and variance `σ²`.
///
/// The paper's basic model (§2) assumes flows are i.i.d. with these two
/// moments; everything the admission controller needs — whether known a
/// priori or measured — is carried by this pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// Mean bandwidth `μ` of one flow.
    pub mean: f64,
    /// Variance `σ²` of one flow's bandwidth.
    pub variance: f64,
}

impl FlowStats {
    /// Creates flow statistics from mean and variance.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `variance >= 0`.
    pub fn new(mean: f64, variance: f64) -> Self {
        assert!(mean > 0.0, "flow mean must be positive, got {mean}");
        assert!(
            variance >= 0.0,
            "flow variance must be non-negative, got {variance}"
        );
        FlowStats { mean, variance }
    }

    /// Creates flow statistics from mean and *standard deviation*.
    pub fn from_mean_sd(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0);
        Self::new(mean, sd * sd)
    }

    /// Standard deviation `σ`.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Coefficient of variation `σ/μ` (the paper's simulations use 0.3).
    #[inline]
    pub fn cov(&self) -> f64 {
        self.std_dev() / self.mean
    }
}

/// A quality-of-service target expressed as an overflow probability
/// `p_q`, together with its Gaussian safety factor `α_q = Q⁻¹(p_q)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosTarget {
    /// Target overflow probability `p_q ∈ (0, 1)`.
    pub p: f64,
    /// Cached `α_q = Q⁻¹(p_q)`.
    alpha: f64,
}

impl QosTarget {
    /// Creates a target from an overflow probability.
    ///
    /// # Panics
    /// Panics unless `p ∈ (0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "QoS target must be in (0,1), got {p}");
        QosTarget { p, alpha: inv_q(p) }
    }

    /// Creates a target from the Gaussian safety factor `α` directly
    /// (`p = Q(α)`).
    pub fn from_alpha(alpha: f64) -> Self {
        QosTarget { p: q(alpha), alpha }
    }

    /// The safety factor `α_q = Q⁻¹(p_q)`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// A bufferless link shared by homogeneous flows: capacity `c`, true
/// per-flow statistics, and the QoS target.
///
/// The *normalized capacity* `n = c/μ` (the paper's system-size
/// parameter) drives every asymptotic result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Link capacity `c` (same bandwidth units as the flow mean).
    pub capacity: f64,
    /// True per-flow statistics.
    pub flow: FlowStats,
    /// QoS target.
    pub qos: QosTarget,
}

impl SystemParams {
    /// Creates a system description.
    ///
    /// # Panics
    /// Panics unless `capacity > 0`.
    pub fn new(capacity: f64, flow: FlowStats, qos: QosTarget) -> Self {
        assert!(capacity > 0.0, "capacity must be positive, got {capacity}");
        SystemParams {
            capacity,
            flow,
            qos,
        }
    }

    /// Convenience constructor from the normalized size `n` (capacity is
    /// `n·μ`, the paper's scaling).
    pub fn from_size(n: f64, flow: FlowStats, qos: QosTarget) -> Self {
        assert!(n > 0.0);
        Self::new(n * flow.mean, flow, qos)
    }

    /// Normalized capacity `n = c/μ`: how many flows fit if each used
    /// exactly its mean bandwidth.
    #[inline]
    pub fn size(&self) -> f64 {
        self.capacity / self.flow.mean
    }

    /// The critical time-scale `T̃_h = T_h/√n` for a given mean holding
    /// time (§3.2): the time the system needs to "repair" an admission
    /// error through departures.
    pub fn critical_timescale(&self, holding_time: f64) -> f64 {
        assert!(holding_time > 0.0);
        holding_time / self.size().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_stats_derived_quantities() {
        let f = FlowStats::from_mean_sd(1.0, 0.3);
        assert!((f.variance - 0.09).abs() < 1e-15);
        assert!((f.std_dev() - 0.3).abs() < 1e-15);
        assert!((f.cov() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn qos_alpha_roundtrip() {
        let t = QosTarget::new(1e-3);
        assert!((q(t.alpha()) - 1e-3).abs() < 1e-12);
        let t2 = QosTarget::from_alpha(t.alpha());
        assert!((t2.p - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn system_size_is_capacity_over_mean() {
        let s = SystemParams::new(
            200.0,
            FlowStats::from_mean_sd(2.0, 0.6),
            QosTarget::new(1e-2),
        );
        assert!((s.size() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn from_size_matches_definition() {
        let f = FlowStats::from_mean_sd(3.0, 1.0);
        let s = SystemParams::from_size(400.0, f, QosTarget::new(1e-3));
        assert!((s.capacity - 1200.0).abs() < 1e-12);
        assert!((s.size() - 400.0).abs() < 1e-12);
    }

    #[test]
    fn critical_timescale_scales_with_sqrt_n() {
        let f = FlowStats::from_mean_sd(1.0, 0.3);
        let s100 = SystemParams::from_size(100.0, f, QosTarget::new(1e-3));
        let s10000 = SystemParams::from_size(10_000.0, f, QosTarget::new(1e-3));
        assert!((s100.critical_timescale(1000.0) - 100.0).abs() < 1e-9);
        assert!((s10000.critical_timescale(1000.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_mean() {
        FlowStats::new(0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_qos() {
        QosTarget::new(0.0);
    }
}
