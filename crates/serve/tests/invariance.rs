//! The headline correctness property of the decision plane: **shard
//! invariance**. For any shard count, any producer count, and either
//! flow engine, the sharded plane's per-link admit/reject sequence —
//! including the admissible counts, compared bit for bit through the
//! canonical byte encoding — equals the single-threaded single-shard
//! serial reference. Sharding and threading are performance knobs,
//! never semantic ones (the serve-side extension of the worker-
//! invariance contract in `crates/sim/tests/session.rs`).

use mbac_metrics::MetricValue;
use mbac_serve::{
    certainty_equivalent_factory, replay_serial, replay_threaded, PlaneConfig, ReplayConfig,
};
use mbac_sim::{
    Engine, MetricsMode, RequestLoad, RequestLoadConfig, ServeWorkload, SessionBuilder,
};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use proptest::prelude::*;
use std::sync::Arc;

fn model(ar1: bool) -> Box<dyn SourceModel> {
    if ar1 {
        Box::new(Ar1Model::new(Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: true,
        }))
    } else {
        Box::new(RcbrModel::new(RcbrConfig::paper_default(1.0)))
    }
}

fn workload(
    seed: u64,
    links: usize,
    ticks: usize,
    requests_per_tick: usize,
    engine: Engine,
    ar1: bool,
) -> ServeWorkload {
    let m = model(ar1);
    let load = RequestLoad {
        model: m.as_ref(),
        cfg: RequestLoadConfig {
            links,
            flows_per_link: 6,
            ticks,
            tick: 0.3,
            requests_per_tick,
            mean_holding: 4.0,
            seed,
        },
    };
    SessionBuilder::new().engine(engine).run(&load).unwrap()
}

fn replay_cfg(shards: usize, producers: usize, ring_capacity: usize) -> ReplayConfig {
    ReplayConfig {
        plane: PlaneConfig {
            shards,
            capacity: 8.0,
            ring_capacity,
            metrics: MetricsMode::Enabled,
            stream: None,
        },
        producers,
        stamp_latency: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any `(shards, producers, engine, model, workload shape)`: the
    /// per-link decision bytes equal the serial reference's. The tiny
    /// ring capacity keeps the backpressure path on the hot side of the
    /// property.
    #[test]
    fn sharded_decisions_match_serial_reference(
        seed in 0u64..1_000_000,
        links in 1usize..6,
        shards in 1usize..=8,
        producers in 1usize..4,
        ring_pow in 3u32..7,
        ticks in 4usize..14,
        requests_per_tick in 0usize..4,
        ar1 in 0u8..2,
        boxed in 0u8..2,
        memoryless in 0u8..2,
    ) {
        let engine = if boxed == 1 { Engine::Boxed } else { Engine::Batched };
        let w = workload(seed, links, ticks, requests_per_tick, engine, ar1 == 1);
        let t_m = if memoryless == 1 { 0.0 } else { 2.0 };
        let make = certainty_equivalent_factory(1e-2, t_m);

        // The reference is always the batched-engine workload: engine
        // choice must not leak into the workload either.
        let w_ref = workload(seed, links, ticks, requests_per_tick, Engine::Batched, ar1 == 1);
        let reference = replay_serial(&replay_cfg(1, 1, 64), Arc::clone(&make), &w_ref).unwrap();
        let sharded = replay_threaded(&replay_cfg(shards, producers, 1 << ring_pow), make, &w).unwrap();

        prop_assert_eq!(sharded.decisions, reference.decisions);
        for link in 0..w.links() {
            prop_assert_eq!(
                sharded.encode_link(link),
                reference.encode_link(link),
                "link {} diverged at shards={}, producers={}, engine={}",
                link, shards, producers, engine
            );
        }
    }
}

/// The acceptance sweep, deterministically: every shard count 1..=8
/// (threaded, 2 producers) reproduces the serial reference byte-for-
/// byte on a fixed workload.
#[test]
fn every_shard_count_matches_serial_reference() {
    let w = workload(42, 5, 20, 3, Engine::Batched, false);
    let make = certainty_equivalent_factory(1e-2, 2.0);
    let reference = replay_serial(&replay_cfg(1, 1, 64), Arc::clone(&make), &w).unwrap();
    assert!(reference.admitted > 0 && reference.rejected() > 0);
    for shards in 1..=8 {
        let sharded = replay_threaded(&replay_cfg(shards, 2, 32), Arc::clone(&make), &w).unwrap();
        assert_eq!(sharded.decisions, reference.decisions);
        for link in 0..w.links() {
            assert_eq!(
                sharded.encode_link(link),
                reference.encode_link(link),
                "link {link} diverged at {shards} shards"
            );
        }
    }
}

/// The per-shard `serve.*` counters account for every decision exactly
/// once, for any shard count: the shard partition is total and
/// disjoint.
#[test]
fn shard_counters_partition_the_decisions() {
    let w = workload(7, 4, 15, 2, Engine::Batched, false);
    let make = certainty_equivalent_factory(1e-2, 2.0);
    for shards in [1, 3, 8] {
        let out = replay_threaded(&replay_cfg(shards, 2, 32), Arc::clone(&make), &w).unwrap();
        let counter = |name: &str| -> u64 {
            (0..shards)
                .map(
                    |s| match out.snapshot.get(&format!("serve.shard{s}.{name}")) {
                        Some(MetricValue::Counter(c)) => c.count,
                        None => 0,
                        other => panic!("{other:?}"),
                    },
                )
                .sum()
        };
        assert_eq!(counter("requests"), out.decisions, "{shards} shards");
        assert_eq!(counter("admitted"), out.admitted);
        assert_eq!(counter("rejected"), out.rejected());
        assert_eq!(
            counter("measures") as usize,
            w.total_events() - w.total_requests()
        );
        // Timing-gated histogram must be absent in plain Enabled mode.
        assert!(out.snapshot.get("serve.shard0.decision_ns").is_none());
    }
}
