//! Multi-producer stress properties of the ingest ring: every pushed
//! item is delivered exactly once (loss-free), and each producer's
//! items arrive in its program order (per-producer FIFO) — including
//! under sustained backpressure from deliberately tiny rings, which is
//! the regime the closed-loop bench runs in.

use mbac_serve::IngestRing;
use proptest::prelude::*;
use std::sync::Arc;

/// Tags an item with its producer and per-producer sequence number.
fn tag(producer: usize, seq: usize) -> u64 {
    ((producer as u64) << 32) | seq as u64
}

/// Pushes `items` tagged items from `producers` threads through `ring`
/// while this thread consumes, returning the consumption order.
fn stress(ring: &Arc<IngestRing<u64>>, producers: usize, items: usize, spin: bool) -> Vec<u64> {
    std::thread::scope(|s| {
        for p in 0..producers {
            let ring = Arc::clone(ring);
            s.spawn(move || {
                for i in 0..items {
                    if spin {
                        ring.push_spin(tag(p, i));
                    } else {
                        let mut item = tag(p, i);
                        // The visible-backpressure path: try, yield, retry.
                        while let Err(back) = ring.try_push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
        let total = producers * items;
        let mut got = Vec::with_capacity(total);
        while got.len() < total {
            match ring.try_pop() {
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        got
    })
}

/// Asserts delivery is exactly-once and in per-producer order.
fn check_fifo_loss_free(received: &[u64], producers: usize, items: usize) {
    assert_eq!(
        received.len(),
        producers * items,
        "lost or duplicated items"
    );
    let mut next = vec![0u64; producers];
    for &v in received {
        let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
        assert!(p < producers);
        assert_eq!(i, next[p], "producer {p} out of order");
        next[p] += 1;
    }
    for (p, &n) in next.iter().enumerate() {
        assert_eq!(n as usize, items, "producer {p} short-delivered");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any producer count, item count, and (tiny) ring capacity: the
    /// drain is loss-free and per-producer FIFO. Capacities down to 2
    /// force the bounded-queue backpressure path on nearly every push.
    #[test]
    fn drain_is_fifo_and_loss_free_under_contention(
        producers in 1usize..5,
        items in 1usize..250,
        cap_pow in 1u32..6,
    ) {
        let ring = Arc::new(IngestRing::with_capacity(1 << cap_pow));
        let received = stress(&ring, producers, items, false);
        check_fifo_loss_free(&received, producers, items);
        prop_assert!(ring.try_pop().is_none(), "ring must end empty");
    }
}

/// Replays the saved case from `ring.proptest-regressions` (the
/// vendored proptest subset does not read the file itself, so the seed
/// is pinned here deterministically): the tightest-contention corner —
/// maximum producers, maximum items, a 2-slot ring — where every push
/// rides the backpressure path and laps wrap fastest.
#[test]
fn regression_max_contention_two_slot_ring() {
    let (producers, items, cap_pow) = (4, 249, 1);
    let ring = Arc::new(IngestRing::with_capacity(1 << cap_pow));
    let received = stress(&ring, producers, items, false);
    check_fifo_loss_free(&received, producers, items);
    assert!(ring.try_pop().is_none());
}

/// Deterministic heavy stress: four producers, thousands of items,
/// an 8-slot ring — maximal lap-around and contention.
#[test]
fn heavy_contention_stays_exactly_once() {
    let ring = Arc::new(IngestRing::with_capacity(8));
    let received = stress(&ring, 4, 5_000, false);
    check_fifo_loss_free(&received, 4, 5_000);
}

/// The spinning push helper delivers the same guarantees.
#[test]
fn push_spin_is_fifo_and_loss_free() {
    let ring = Arc::new(IngestRing::with_capacity(16));
    let received = stress(&ring, 2, 2_000, true);
    check_fifo_loss_free(&received, 2, 2_000);
}
