//! Shard invariance, extended to routed workloads: for any shard count
//! 1..=8, any producer count, either flow engine, and any of the
//! reference topologies (single-link, parking-lot, star), the sharded
//! routed plane's per-route decision sequence — votes, admissible
//! counts, occupancies, bit for bit through the canonical encoding —
//! equals the single-threaded serial reference. And on a single-link
//! topology the routed protocol must reproduce the *legacy* plane's
//! decision bytes exactly: the multi-hop machinery is a strict
//! generalization, not a re-bless.

use mbac_metrics::MetricValue;
use mbac_num::KernelDispatch;
use mbac_serve::{
    certainty_equivalent_factory, replay_serial, routed_replay_serial, routed_replay_threaded,
    PlaneConfig, ReplayConfig, RoutedPlaneConfig, RoutedReplayConfig,
};
use mbac_sim::{
    Engine, MetricsMode, RequestLoad, RequestLoadConfig, RoutedLoad, RoutedLoadConfig,
    RoutedWorkload, SessionBuilder, Topology,
};
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use proptest::prelude::*;
use std::sync::Arc;

fn model(ar1: bool) -> Box<dyn SourceModel> {
    if ar1 {
        Box::new(Ar1Model::new(Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: true,
        }))
    } else {
        Box::new(RcbrModel::new(RcbrConfig::paper_default(1.0)))
    }
}

/// The acceptance topologies: single-link (the degenerate case that
/// must match the legacy plane), the 3-hop parking lot, the 4-leg star.
fn topology(kind: usize) -> Topology {
    match kind {
        0 => Topology::single_link(8.0),
        1 => Topology::parking_lot(3, 14.0),
        // The hub aggregates all four legs' routes (20 steady flows),
        // so its capacity sits just past the acceptance boundary.
        _ => Topology::star(4, 26.0),
    }
}

fn workload(
    seed: u64,
    topo: Topology,
    ticks: usize,
    requests_per_tick: usize,
    noise_sd: f64,
    engine: Engine,
    ar1: bool,
) -> RoutedWorkload {
    let m = model(ar1);
    let load = RoutedLoad {
        model: m.as_ref(),
        cfg: RoutedLoadConfig {
            topology: Arc::new(topo),
            flows_per_route: 5,
            ticks,
            tick: 0.3,
            requests_per_tick,
            mean_holding: 4.0,
            noise_sd,
            seed,
        },
    };
    SessionBuilder::new().engine(engine).run(&load).unwrap()
}

fn replay_cfg(shards: usize, producers: usize, ring_capacity: usize) -> RoutedReplayConfig {
    RoutedReplayConfig {
        plane: RoutedPlaneConfig {
            shards,
            ring_capacity,
            metrics: MetricsMode::Enabled,
            stream: None,
        },
        producers,
        stamp_latency: false,
    }
}

fn assert_routes_match(
    sharded: &mbac_serve::RoutedReplayOutcome,
    reference: &mbac_serve::RoutedReplayOutcome,
    routes: usize,
    label: &str,
) {
    assert_eq!(sharded.decisions, reference.decisions, "{label}");
    for route in 0..routes {
        assert_eq!(
            sharded.encode_route(route),
            reference.encode_route(route),
            "route {route} diverged: {label}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any `(topology, shards, producers, engine, model, noise)`: the
    /// per-route decision bytes equal the serial reference's. The tiny
    /// ring capacity keeps backpressure — and therefore parking — on
    /// the hot side of the property.
    #[test]
    fn sharded_routed_decisions_match_serial_reference(
        seed in 0u64..1_000_000,
        topo_kind in 0usize..3,
        shards in 1usize..=8,
        producers in 1usize..4,
        ring_pow in 3u32..7,
        ticks in 4usize..14,
        requests_per_tick in 0usize..4,
        noisy in 0u8..2,
        ar1 in 0u8..2,
        boxed in 0u8..2,
        memoryless in 0u8..2,
    ) {
        let engine = if boxed == 1 { Engine::Boxed } else { Engine::Batched };
        let noise_sd = if noisy == 1 { 0.05 } else { 0.0 };
        let w = workload(seed, topology(topo_kind), ticks, requests_per_tick, noise_sd, engine, ar1 == 1);
        let t_m = if memoryless == 1 { 0.0 } else { 2.0 };
        let make = certainty_equivalent_factory(1e-2, t_m);

        // The reference is always the batched-engine workload: engine
        // choice must not leak into the workload either.
        let w_ref = workload(seed, topology(topo_kind), ticks, requests_per_tick, noise_sd, Engine::Batched, ar1 == 1);
        let reference = routed_replay_serial(&replay_cfg(1, 1, 64), Arc::clone(&make), &w_ref).unwrap();
        let sharded = routed_replay_threaded(&replay_cfg(shards, producers, 1 << ring_pow), make, &w).unwrap();

        prop_assert_eq!(sharded.decisions, reference.decisions);
        for route in 0..w.topology().routes() {
            prop_assert_eq!(
                sharded.encode_route(route),
                reference.encode_route(route),
                "route {} diverged at topo={}, shards={}, producers={}",
                route, topo_kind, shards, producers
            );
        }
    }
}

/// The acceptance sweep, deterministically: every shard count 1..=8
/// (threaded, 2 producers) reproduces the serial reference byte for
/// byte, on every reference topology.
#[test]
fn every_shard_count_matches_serial_reference_on_every_topology() {
    for topo_kind in 0..3 {
        let w = workload(42, topology(topo_kind), 20, 3, 0.05, Engine::Batched, false);
        let make = certainty_equivalent_factory(1e-2, 2.0);
        let reference = routed_replay_serial(&replay_cfg(1, 1, 64), Arc::clone(&make), &w).unwrap();
        assert!(
            reference.admitted > 0 && reference.rejected() > 0,
            "topology {topo_kind} must exercise both outcomes"
        );
        for shards in 1..=8 {
            let sharded =
                routed_replay_threaded(&replay_cfg(shards, 2, 32), Arc::clone(&make), &w).unwrap();
            assert_routes_match(
                &sharded,
                &reference,
                w.topology().routes(),
                &format!("topology {topo_kind}, {shards} shards"),
            );
        }
    }
}

/// The degenerate case is not allowed to drift: on a single-link
/// topology, the routed protocol must reproduce the **legacy** plane's
/// decision bytes exactly — same workload bits, same decision bits —
/// without re-blessing anything. Hop 0's encoding *is* the legacy
/// encoding.
#[test]
fn single_link_routed_decisions_reproduce_legacy_bytes() {
    let m = model(false);
    let legacy_cfg = RequestLoadConfig {
        links: 1,
        flows_per_link: 6,
        ticks: 20,
        tick: 0.3,
        requests_per_tick: 3,
        mean_holding: 4.0,
        seed: 42,
    };
    let legacy_load = RequestLoad {
        model: m.as_ref(),
        cfg: legacy_cfg.clone(),
    };
    let legacy_w = SessionBuilder::new().run(&legacy_load).unwrap();
    let legacy = replay_serial(
        &ReplayConfig {
            plane: PlaneConfig {
                shards: 1,
                capacity: 8.0,
                ring_capacity: 64,
                metrics: MetricsMode::Disabled,
                stream: None,
            },
            producers: 1,
            stamp_latency: false,
        },
        certainty_equivalent_factory(1e-2, 2.0),
        &legacy_w,
    )
    .unwrap();

    let routed_load = RoutedLoad {
        model: m.as_ref(),
        cfg: RoutedLoadConfig::single_link(8.0, &legacy_cfg),
    };
    let routed_w = SessionBuilder::new().run(&routed_load).unwrap();
    let make = certainty_equivalent_factory(1e-2, 2.0);
    let serial = routed_replay_serial(&replay_cfg(1, 1, 64), Arc::clone(&make), &routed_w).unwrap();
    assert!(legacy.admitted > 0 && legacy.rejected() > 0);
    assert_eq!(serial.encode_route(0), legacy.encode_link(0));
    // And through the sharded path (per-link hashing may place the one
    // link on any shard).
    for shards in [2, 5, 8] {
        let sharded =
            routed_replay_threaded(&replay_cfg(shards, 2, 32), Arc::clone(&make), &routed_w)
                .unwrap();
        assert_eq!(
            sharded.encode_route(0),
            legacy.encode_link(0),
            "{shards} shards"
        );
    }
}

/// Kernel dispatch is a performance knob, never a semantic one: the
/// routed decision bytes are identical under the scalar and wide
/// kernels, on a multi-hop topology, serial and sharded.
#[test]
fn routed_decisions_are_bit_identical_across_dispatch() {
    let run = || {
        let w = workload(7, topology(1), 15, 2, 0.05, Engine::Batched, true);
        let make = certainty_equivalent_factory(1e-2, 2.0);
        let serial = routed_replay_serial(&replay_cfg(1, 1, 64), Arc::clone(&make), &w).unwrap();
        let sharded = routed_replay_threaded(&replay_cfg(4, 2, 32), make, &w).unwrap();
        let routes = w.topology().routes();
        (0..routes)
            .map(|r| (serial.encode_route(r), sharded.encode_route(r)))
            .collect::<Vec<_>>()
    };
    let prev = KernelDispatch::set_global(KernelDispatch::Scalar);
    let scalar = run();
    KernelDispatch::set_global(KernelDispatch::Wide);
    let wide = run();
    KernelDispatch::set_global(prev);
    assert_eq!(scalar.len(), wide.len());
    for (route, (s, w)) in scalar.into_iter().zip(wide).enumerate() {
        assert_eq!(
            s.0, w.0,
            "serial bytes diverged across dispatch, route {route}"
        );
        assert_eq!(
            s.1, w.1,
            "sharded bytes diverged across dispatch, route {route}"
        );
        assert_eq!(s.0, s.1, "serial/sharded diverged, route {route}");
    }
}

/// The routed counters account for everything exactly once, for any
/// shard count: decisions partition across shards, and every per-link
/// reserve either committed or aborted.
#[test]
fn routed_counters_partition_the_decisions() {
    let topo = topology(1); // parking-lot(3): 3 links, 4 routes
    let w = workload(7, topo, 15, 2, 0.0, Engine::Batched, false);
    let make = certainty_equivalent_factory(1e-2, 2.0);
    for shards in [1, 3, 8] {
        let out =
            routed_replay_threaded(&replay_cfg(shards, 2, 32), Arc::clone(&make), &w).unwrap();
        let counter = |name: &str| -> u64 {
            (0..shards)
                .map(
                    |s| match out.snapshot.get(&format!("serve.shard{s}.{name}")) {
                        Some(MetricValue::Counter(c)) => c.count,
                        None => 0,
                        other => panic!("{other:?}"),
                    },
                )
                .sum()
        };
        assert_eq!(counter("requests"), out.decisions, "{shards} shards");
        assert_eq!(counter("admitted"), out.admitted);
        assert_eq!(counter("rejected"), out.rejected());
        // Per-link: every reserve resolves to a commit or an abort, and
        // the reserve total counts each request once per hop.
        let link_counter = |link: usize, name: &str| -> u64 {
            match out.snapshot.get(&format!("net.link{link}.{name}")) {
                Some(MetricValue::Counter(c)) => c.count,
                other => panic!("net.link{link}.{name}: {other:?}"),
            }
        };
        let mut reserves = 0;
        for link in 0..3 {
            assert_eq!(
                link_counter(link, "commits") + link_counter(link, "aborts"),
                link_counter(link, "reserves"),
                "link {link} at {shards} shards"
            );
            reserves += link_counter(link, "reserves");
        }
        // parking-lot(3): route 0 reserves 3 hops, each cross route 1.
        let per_request_hops: u64 = out
            .per_route
            .iter()
            .enumerate()
            .map(|(r, ds)| ds.len() as u64 * if r == 0 { 3 } else { 1 })
            .sum();
        assert_eq!(reserves, per_request_hops, "{shards} shards");
    }
}
