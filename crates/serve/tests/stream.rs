//! Streaming-emission contract on the decision plane: attaching a
//! stream handle never changes what the plane computes, and the
//! cumulative interval records it emits re-fold to the plane's own
//! merged snapshot exactly — for any shard count, producer count, and
//! flush interval.

use mbac_metrics::{refold_intervals, StreamConfig, StreamItem, StreamSink};
use mbac_serve::{
    certainty_equivalent_factory, replay_serial, replay_threaded, PlaneConfig, ReplayConfig,
};
use mbac_sim::{MetricsMode, RequestLoad, RequestLoadConfig, ServeWorkload, SessionBuilder};
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use proptest::prelude::*;

fn workload(seed: u64, links: usize) -> ServeWorkload {
    let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
    let load = RequestLoad {
        model: &model,
        cfg: RequestLoadConfig {
            links,
            flows_per_link: 6,
            ticks: 20,
            tick: 0.1,
            requests_per_tick: 3,
            mean_holding: 5.0,
            seed,
        },
    };
    SessionBuilder::new().run(&load).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// With sampling at 1.0 every decision emits exactly one sample,
    /// and the final intervals (one per shard, cumulative) re-fold to
    /// the plane's merged `serve.shard<i>.*` snapshot byte-for-byte.
    #[test]
    fn serve_stream_refolds_to_plane_snapshot(
        seed in 0u64..100_000,
        shards in 1usize..5,
        producers in 1usize..4,
        flush_interval in 0u64..20,
    ) {
        let w = workload(seed, 8);
        let (sink, collected) = StreamSink::collecting(StreamConfig {
            ring_capacity: 1 << 14,
            sample_fraction: 1.0,
            flush_interval,
            ..StreamConfig::default()
        });
        let cfg = ReplayConfig {
            plane: PlaneConfig {
                shards,
                capacity: 8.0,
                ring_capacity: 64,
                metrics: MetricsMode::Streaming,
                stream: Some(sink.handle()),
            },
            producers,
            stamp_latency: false,
        };
        let make = certainty_equivalent_factory(1e-2, 2.0);
        let out = if shards > 1 || producers > 1 {
            replay_threaded(&cfg, make, &w).unwrap()
        } else {
            replay_serial(&cfg, make, &w).unwrap()
        };
        let stats = sink.finish().unwrap();
        prop_assert_eq!(stats.dropped, 0, "oversized ring must not drop");
        prop_assert_eq!(stats.samples, out.decisions, "one sample per decision");

        let items = collected.lock().unwrap();
        let sampled = items
            .iter()
            .filter(|i| matches!(i, StreamItem::Sample { .. }))
            .count() as u64;
        prop_assert_eq!(sampled, out.decisions);
        let refolded = refold_intervals(&items);
        prop_assert_eq!(
            out.snapshot.to_json(),
            refolded.to_json(),
            "re-folded serve intervals diverged (shards={}, producers={})",
            shards,
            producers
        );
    }
}
