//! The bounded lock-free ingest ring (re-exported).
//!
//! The Vyukov bounded-MPMC implementation originally lived here as the
//! decision plane's measurement ingest queue; the streaming metrics
//! sink now shares it, so the code moved to [`mbac_metrics::ring`].
//! This module keeps the `mbac_serve::ring` path (and the crate-root
//! `IngestRing` re-export) stable for existing callers, and
//! `tests/ring.rs` still stresses the queue from the serve side.
//!
//! The properties the serve plane's correctness argument leans on are
//! documented at the definition: per-producer FIFO (each link has one
//! producer, so per-link measurement order is preserved across shards)
//! and visible-not-silent backpressure ([`IngestRing::try_push`]
//! returns the item when full; [`IngestRing::push_spin`] waits).

pub use mbac_metrics::ring::IngestRing;
