//! Multi-hop admission over the sharded plane: deterministic two-phase
//! reserve/commit across shards.
//!
//! # The problem
//!
//! A routed request must be admitted at *every* hop of its route or at
//! none of them — and the hops' links may be owned by different shards.
//! A naive protocol (admit hop-by-hop, undo on a later rejection) leaks
//! provisional occupancy into early hops and makes the decision stream
//! depend on cross-shard timing, destroying the serial-equivalence
//! guarantee the single-link plane proves in [`crate::plane`].
//!
//! # The protocol
//!
//! A request on an `h`-hop route appears as `h`
//! [`RoutedShardEvent::Reserve`] occurrences
//! — one in each hop link's event stream — all sharing one global
//! `seq`. The workload generator guarantees each link's stream carries
//! strictly increasing seqs. Each shard, on reaching a link's Reserve:
//!
//! 1. **votes** immediately — computes the hop's admissible count from
//!    its controller and compares against the current occupancy
//!    ([`mbac_core::hop_admits`]), publishing the vote to the shared
//!    [`RouteTable`] — but does **not** touch occupancy;
//! 2. the **last** voter (detected by an `AcqRel` countdown) resolves
//!    the request: admit iff every hop voted yes, published with
//!    `Release`;
//! 3. every hop **commits on resolution**: occupancy increments only on
//!    a resolved admit. A rejection commits nothing anywhere — rollback
//!    is the absence of a write, so a rejected request is
//!    indistinguishable from one never made (the bit-stability the
//!    rollback test suite asserts).
//!
//! Until its vote resolves, a link is **parked**: subsequent events for
//! that link buffer in arrival order while the shard keeps draining its
//! other links. Parking — never blocking — is what makes the protocol
//! deadlock-free: since every link's stream is seq-sorted, the globally
//! minimal unresolved seq has a castable vote at the head of each of
//! its hop links' queues, so it resolves; induction does the rest.
//!
//! # Determinism
//!
//! A hop's vote depends only on its link's state, which evolves only
//! through that link's events, applied in per-link stream order
//! (parking preserves it). So every hop's vote — and therefore every
//! resolution — is independent of shard count, producer count, and
//! cross-link interleaving. Decisions are emitted by the owner of each
//! route's *first* hop in that link's processing order, so the
//! per-route decision sequence is seq-ordered and identical to the
//! serial reference, byte for byte. `tests/routed.rs` proves it
//! property-based; on a single-hop topology the protocol degenerates to
//! exactly the legacy [`crate::plane::Shard`] sequence, reproducing its
//! decision bytes bit for bit.

use crate::plane::{ControllerFactory, DecisionEntry, ServeError, ShardMetrics, ShardStream};
use crate::ring::IngestRing;
use mbac_core::topology::{hop_admits, LinkId, RouteId, Topology};
use mbac_metrics::{Aggregated, Counter, MetricValue, MetricsSnapshot, StreamHandle};
use mbac_sim::{MbacController, MetricsMode, RoutedEvent, RoutedWorkload};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// One unit of routed ingest.
#[derive(Debug)]
pub enum RoutedShardEvent {
    /// A measurement snapshot for `link` (same semantics as
    /// [`crate::plane::ShardEvent::Measure`]).
    Measure {
        /// The link the measurement belongs to.
        link: LinkId,
        /// Measurement time.
        t: f64,
        /// Per-flow rates as measured at this link's node.
        rates: Box<[f64]>,
    },
    /// One hop's share of a routed admission request.
    Reserve {
        /// The hop link.
        link: LinkId,
        /// Global request sequence number (strictly increasing within
        /// each link's stream).
        seq: u64,
        /// This link's position on the request's route (hop 0 emits the
        /// decision).
        hop: u8,
        /// Enqueue timestamp; hop 0's stamp becomes the decision's
        /// ingest-to-decision latency.
        enqueued: Option<Instant>,
    },
}

impl RoutedShardEvent {
    /// The link this event belongs to.
    pub fn link(&self) -> LinkId {
        match self {
            RoutedShardEvent::Measure { link, .. } | RoutedShardEvent::Reserve { link, .. } => {
                *link
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decisions
// ---------------------------------------------------------------------

/// One hop's contribution to a routed decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopDecision {
    /// The hop link.
    pub link: LinkId,
    /// This hop's vote (`true` = would admit).
    pub vote: bool,
    /// The hop controller's admissible count at vote time (`None` on a
    /// cold start, which fails safe to a no vote).
    pub admissible: Option<f64>,
    /// The hop link's occupancy *after* the resolved decision.
    pub occupancy: u32,
}

/// One resolved routed admission decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// The route the request addressed.
    pub route: RouteId,
    /// The request's global sequence number.
    pub seq: u64,
    /// Admit (`true`, every hop voted yes) or reject.
    pub admit: bool,
    /// The first hop that voted no, when rejected.
    pub reject_hop: Option<u8>,
    /// Per-hop votes, in route order.
    pub hops: Vec<HopDecision>,
    /// Hop 0's ingest-to-decision latency, when stamped.
    pub latency_ns: Option<u64>,
}

impl RouteDecision {
    /// Appends the decision's canonical byte encoding. Hop 0 is encoded
    /// exactly as [`crate::plane::Decision::encode_into`] — flags byte
    /// (bit 0 = route admit, bit 1 = admissible present), admissible
    /// f64 bits (LE), occupancy (LE) — so a single-hop route reproduces
    /// the legacy bytes bit for bit. Routes with more hops append a
    /// reject-hop byte (`0xFF` = admitted) and one record per further
    /// hop (flags bit 0 = that hop's vote). Latency is excluded — it is
    /// a machine fact, not a decision.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let h0 = &self.hops[0];
        let mut flags = self.admit as u8;
        if h0.admissible.is_some() {
            flags |= 2;
        }
        out.push(flags);
        out.extend_from_slice(&h0.admissible.map_or(0, f64::to_bits).to_le_bytes());
        out.extend_from_slice(&h0.occupancy.to_le_bytes());
        if self.hops.len() > 1 {
            out.push(self.reject_hop.map_or(0xFF, |h| h));
            for h in &self.hops[1..] {
                let mut f = h.vote as u8;
                if h.admissible.is_some() {
                    f |= 2;
                }
                out.push(f);
                out.extend_from_slice(&h.admissible.map_or(0, f64::to_bits).to_le_bytes());
                out.extend_from_slice(&h.occupancy.to_le_bytes());
            }
        }
    }
}

// ---------------------------------------------------------------------
// The shared route table
// ---------------------------------------------------------------------

const PENDING: u8 = 0;
const ADMIT: u8 = 1;
const REJECT: u8 = 2;

/// One hop's published vote. `meta` packs the vote bit (bit 0), the
/// admissible-present bit (bit 1), and the occupancy before the
/// decision (bits 32..); `bits` holds the admissible count's f64 bits.
/// Plain stores/loads — the `remaining` countdown's `AcqRel` chain and
/// the `Release`/`Acquire` resolution publish order them.
#[derive(Debug)]
struct HopVote {
    meta: AtomicU64,
    bits: AtomicU64,
}

/// The shared vote/resolution table, one slot per request seq. Sized up
/// front from the workload's seq → route map, so no allocation or
/// locking happens on the decide path.
#[derive(Debug)]
pub struct RouteTable {
    routes: Vec<RouteId>,
    offsets: Vec<u32>,
    hop_counts: Vec<u8>,
    votes: Vec<HopVote>,
    remaining: Vec<AtomicU32>,
    resolution: Vec<AtomicU8>,
}

impl RouteTable {
    /// Builds the table for a workload's request sequence.
    pub fn for_requests(topology: &Topology, request_routes: &[RouteId]) -> Self {
        let mut offsets = Vec::with_capacity(request_routes.len());
        let mut hop_counts = Vec::with_capacity(request_routes.len());
        let mut remaining = Vec::with_capacity(request_routes.len());
        let mut total = 0u32;
        for &route in request_routes {
            let hops = topology.route(route).len();
            offsets.push(total);
            hop_counts.push(hops as u8);
            remaining.push(AtomicU32::new(hops as u32));
            total += hops as u32;
        }
        RouteTable {
            routes: request_routes.to_vec(),
            offsets,
            hop_counts,
            votes: (0..total)
                .map(|_| HopVote {
                    meta: AtomicU64::new(0),
                    bits: AtomicU64::new(0),
                })
                .collect(),
            remaining,
            resolution: request_routes
                .iter()
                .map(|_| AtomicU8::new(PENDING))
                .collect(),
        }
    }

    /// Number of request slots.
    pub fn requests(&self) -> usize {
        self.routes.len()
    }

    /// Publishes one hop's vote. When this was the last outstanding
    /// vote, resolves the request (admit iff every hop voted yes) and
    /// returns the verdict; otherwise returns `None` and the caller
    /// parks until [`RouteTable::resolution`] reports one.
    fn vote(
        &self,
        seq: u64,
        hop: u8,
        vote: bool,
        admissible: Option<f64>,
        occ: u32,
    ) -> Option<bool> {
        let s = seq as usize;
        let off = self.offsets[s] as usize + hop as usize;
        let mut meta = u64::from(vote) | (u64::from(occ) << 32);
        if admissible.is_some() {
            meta |= 2;
        }
        self.votes[off]
            .bits
            .store(admissible.map_or(0, f64::to_bits), Ordering::Relaxed);
        self.votes[off].meta.store(meta, Ordering::Relaxed);
        if self.remaining[s].fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last voter: the AcqRel chain makes every hop's stores
            // visible here. Resolve and publish.
            let base = self.offsets[s] as usize;
            let all_yes = (0..self.hop_counts[s] as usize)
                .all(|h| self.votes[base + h].meta.load(Ordering::Relaxed) & 1 != 0);
            let verdict = if all_yes { ADMIT } else { REJECT };
            self.resolution[s].store(verdict, Ordering::Release);
            Some(all_yes)
        } else {
            None
        }
    }

    /// The request's resolution, if published.
    pub fn resolution(&self, seq: u64) -> Option<bool> {
        match self.resolution[seq as usize].load(Ordering::Acquire) {
            PENDING => None,
            v => Some(v == ADMIT),
        }
    }

    /// Builds the full decision record for a resolved request. Must only
    /// be called after [`RouteTable::resolution`] returned `Some` (the
    /// `Acquire` there orders the vote reads here).
    fn decision(&self, topology: &Topology, seq: u64, latency_ns: Option<u64>) -> RouteDecision {
        let s = seq as usize;
        let route = self.routes[s];
        let admit = self.resolution[s].load(Ordering::Acquire) == ADMIT;
        let base = self.offsets[s] as usize;
        let path = topology.route(route);
        let mut reject_hop = None;
        let hops = (0..self.hop_counts[s] as usize)
            .map(|h| {
                let meta = self.votes[base + h].meta.load(Ordering::Relaxed);
                let vote = meta & 1 != 0;
                if !vote && reject_hop.is_none() {
                    reject_hop = Some(h as u8);
                }
                let admissible = (meta & 2 != 0)
                    .then(|| f64::from_bits(self.votes[base + h].bits.load(Ordering::Relaxed)));
                HopDecision {
                    link: path[h],
                    vote,
                    admissible,
                    occupancy: ((meta >> 32) as u32) + admit as u32,
                }
            })
            .collect();
        RouteDecision {
            route,
            seq,
            admit,
            reject_hop,
            hops,
            latency_ns,
        }
    }
}

// ---------------------------------------------------------------------
// Routed shard
// ---------------------------------------------------------------------

/// A vote cast but not yet resolved: the hop context needed to commit
/// when the verdict lands.
#[derive(Debug, Clone, Copy)]
struct ParkedReserve {
    seq: u64,
    hop: u8,
    enqueued: Option<Instant>,
}

/// Per-link state plus the parking machinery.
struct RoutedLinkState {
    ctl: MbacController,
    flows: u32,
    parked: Option<ParkedReserve>,
    /// Events that arrived while parked, in arrival order.
    pending: VecDeque<RoutedShardEvent>,
    measures: u64,
    reserves: u64,
    commits: u64,
    aborts: u64,
}

/// One shard of the routed plane: the links it owns, their controllers
/// and parking queues, and its ingest ring.
pub struct RoutedShard {
    index: usize,
    topology: Arc<Topology>,
    table: Arc<RouteTable>,
    ring: Arc<IngestRing<RoutedShardEvent>>,
    links: HashMap<LinkId, RoutedLinkState>,
    /// Links currently parked (each appears once).
    parked_links: Vec<LinkId>,
    make: ControllerFactory,
    metrics: Option<Box<ShardMetrics>>,
    stream: Option<Box<ShardStream>>,
}

impl RoutedShard {
    /// This shard's index within the plane.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether any of this shard's links awaits a cross-shard verdict.
    pub fn has_parked(&self) -> bool {
        !self.parked_links.is_empty()
    }

    /// Whether this shard's ring has no pending events (approximate
    /// while producers are running, exact once they have stopped).
    pub fn ring_is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    fn link_mut(&mut self, link: LinkId) -> &mut RoutedLinkState {
        self.links.entry(link).or_insert_with(|| RoutedLinkState {
            ctl: (self.make)(),
            flows: 0,
            parked: None,
            pending: VecDeque::new(),
            measures: 0,
            reserves: 0,
            commits: 0,
            aborts: 0,
        })
    }

    /// Applies one event, buffering it when the link is parked.
    pub fn apply(&mut self, event: RoutedShardEvent, out: &mut Vec<RouteDecision>) {
        let link = event.link();
        let state = self.link_mut(link);
        if state.parked.is_some() {
            state.pending.push_back(event);
        } else {
            self.process(event, out);
        }
    }

    /// Processes one event on an unparked link.
    fn process(&mut self, event: RoutedShardEvent, out: &mut Vec<RouteDecision>) {
        match event {
            RoutedShardEvent::Measure { link, t, rates } => {
                let state = self.link_mut(link);
                state.ctl.observe(t, &rates);
                state.flows = rates.len() as u32;
                state.measures += 1;
                if let Some(m) = self.metrics.as_deref_mut() {
                    m.measures.inc();
                }
            }
            RoutedShardEvent::Reserve {
                link,
                seq,
                hop,
                enqueued,
            } => {
                let capacity = self.topology.capacity(link);
                let state = self.link_mut(link);
                let admissible = state.ctl.admissible_count(capacity);
                let vote = hop_admits(admissible, state.flows);
                let occ = state.flows;
                state.reserves += 1;
                let verdict = self.table.vote(seq, hop, vote, admissible, occ);
                match verdict {
                    Some(admit) => self.commit(link, seq, hop, admit, enqueued, out),
                    None => {
                        self.link_mut(link).parked = Some(ParkedReserve { seq, hop, enqueued });
                        self.parked_links.push(link);
                    }
                }
            }
        }
    }

    /// Commits a resolved hop: occupancy moves only here, and only on
    /// admit — a rejected request writes nothing, so rollback is a
    /// no-op by construction. Hop 0's owner emits the decision.
    fn commit(
        &mut self,
        link: LinkId,
        seq: u64,
        hop: u8,
        admit: bool,
        enqueued: Option<Instant>,
        out: &mut Vec<RouteDecision>,
    ) {
        let state = self.link_mut(link);
        if admit {
            state.flows += 1;
            state.commits += 1;
        } else {
            state.aborts += 1;
        }
        if hop == 0 {
            let latency_ns =
                enqueued.map(|at| u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let d = self.table.decision(&self.topology, seq, latency_ns);
            // Hop 0's view mirrors the single-link plane's Decision:
            // first-hop admissible and post-decision occupancy.
            let entry = DecisionEntry {
                admit,
                occupancy: d.hops[0].occupancy,
                admissible: d.hops[0].admissible,
                latency_ns,
            };
            if let Some(m) = self.metrics.as_deref_mut() {
                m.fold_decision(&entry);
            }
            self.stream_decision(&entry);
            out.push(d);
        }
    }

    /// One parking sweep: commits every parked link whose verdict has
    /// been published, then replays its buffered events (which may park
    /// it again). Returns how many parked reserves were committed —
    /// loop until 0 to settle.
    pub fn pump(&mut self, out: &mut Vec<RouteDecision>) -> usize {
        let mut progressed = 0;
        let mut i = 0;
        while i < self.parked_links.len() {
            let link = self.parked_links[i];
            let parked = self.links[&link].parked.expect("parked link has a reserve");
            let Some(admit) = self.table.resolution(parked.seq) else {
                i += 1;
                continue;
            };
            // Unlist before replaying: a re-park inside `process` pushes
            // the link back, so leaving it listed would duplicate it.
            self.parked_links.swap_remove(i);
            self.link_mut(link).parked = None;
            self.commit(link, parked.seq, parked.hop, admit, parked.enqueued, out);
            progressed += 1;
            // Replay the buffer until it drains or the link re-parks.
            loop {
                let state = self.link_mut(link);
                if state.parked.is_some() {
                    break;
                }
                let Some(ev) = state.pending.pop_front() else {
                    break;
                };
                self.process(ev, out);
            }
        }
        progressed
    }

    /// Drains every event currently in the ring, in ring order, then
    /// runs one parking sweep. Returns events processed plus parked
    /// commits applied (0 = no progress).
    pub fn drain_into(&mut self, out: &mut Vec<RouteDecision>) -> usize {
        let mut n = 0;
        while let Some(ev) = self.ring.try_pop() {
            self.apply(ev, out);
            n += 1;
        }
        if n > 0 {
            if let Some(m) = self.metrics.as_deref_mut() {
                m.batches.inc();
            }
        }
        n + self.pump(out)
    }

    /// This shard's `serve.shard<i>.*` bundle plus one unprefixed
    /// counter bundle per owned link (empty when collection is
    /// disabled).
    fn metrics_snapshot(&self) -> (MetricsSnapshot, Vec<(usize, MetricsSnapshot)>) {
        let shard = self
            .metrics
            .as_deref()
            .map(ShardMetrics::snapshot)
            .unwrap_or_default();
        let mut links = Vec::new();
        if self.metrics.is_some() {
            for (link, state) in &self.links {
                let mut bundle = MetricsSnapshot::new();
                for (name, v) in [
                    ("measures", state.measures),
                    ("reserves", state.reserves),
                    ("commits", state.commits),
                    ("aborts", state.aborts),
                ] {
                    let mut c = Counter::new();
                    c.add(v);
                    bundle.insert(name, MetricValue::Counter(c.snapshot()));
                }
                links.push((link.index(), bundle));
            }
        }
        (shard, links)
    }

    /// This shard's metrics under plane-wide names — `serve.shard{i}.*`
    /// plus `net.link{j}.*` for each owned link — the shape interval
    /// records carry so a stream reader sees the same names as the
    /// merged plane snapshot.
    fn prefixed_snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        let (shard_bundle, link_bundles) = self.metrics_snapshot();
        out.merge_prefixed(&format!("serve.shard{}", self.index), &shard_bundle);
        for (link, bundle) in link_bundles {
            out.merge_prefixed(&format!("net.link{link}"), &bundle);
        }
        out
    }

    /// Advances the streaming state by one hop-0 decision: sample
    /// emission, plus a cumulative interval flush when one is due.
    fn stream_decision(&mut self, e: &DecisionEntry) {
        let Some(s) = self.stream.as_deref_mut() else {
            return;
        };
        if s.advance(e) {
            let snap = self.prefixed_snapshot();
            if let Some(s) = self.stream.as_deref() {
                s.emit_interval(snap);
            }
        }
    }
}

impl Drop for RoutedShard {
    /// Emits the final cumulative interval so every shard's totals are
    /// recoverable from the stream even with `flush_interval: 0`.
    fn drop(&mut self) {
        if let Some(s) = self.stream.take() {
            s.emit_interval(self.prefixed_snapshot());
        }
    }
}

// ---------------------------------------------------------------------
// Routed plane
// ---------------------------------------------------------------------

/// Routed decision-plane configuration. Capacities come from the
/// workload's topology, not from here.
#[derive(Debug, Clone)]
pub struct RoutedPlaneConfig {
    /// Number of shards (link-state partitions).
    pub shards: usize,
    /// Ingest-ring capacity per shard.
    pub ring_capacity: usize,
    /// Metrics collection mode.
    pub metrics: MetricsMode,
    /// Streaming-emission handle. When set, each shard samples raw
    /// hop-0 decision records (stream = shard index, seq = decision
    /// count) and flushes cumulative interval snapshots through it;
    /// aggregates are unaffected.
    pub stream: Option<StreamHandle>,
}

impl Default for RoutedPlaneConfig {
    fn default() -> Self {
        RoutedPlaneConfig {
            shards: 1,
            ring_capacity: 1024,
            metrics: MetricsMode::Disabled,
            stream: None,
        }
    }
}

/// The routed decision plane: shards plus the shared route table.
pub struct RoutedPlane {
    shards: Vec<RoutedShard>,
}

impl RoutedPlane {
    /// Builds a plane sized for `workload`: the route table is
    /// pre-allocated from the workload's seq → route map, and each
    /// shard learns the topology's capacities.
    pub fn for_workload(
        cfg: &RoutedPlaneConfig,
        workload: &RoutedWorkload,
        make: ControllerFactory,
    ) -> Result<Self, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if cfg.ring_capacity == 0 {
            return Err(ServeError::ZeroRingCapacity);
        }
        let topology = Arc::clone(workload.topology());
        let table = Arc::new(RouteTable::for_requests(
            &topology,
            workload.request_routes(),
        ));
        let timing = cfg.metrics == MetricsMode::EnabledWithTiming;
        let shards = (0..cfg.shards)
            .map(|index| RoutedShard {
                index,
                topology: Arc::clone(&topology),
                table: Arc::clone(&table),
                ring: Arc::new(IngestRing::with_capacity(cfg.ring_capacity)),
                links: HashMap::new(),
                parked_links: Vec::new(),
                make: Arc::clone(&make),
                metrics: (cfg.metrics != MetricsMode::Disabled)
                    .then(|| Box::new(ShardMetrics::new(timing))),
                stream: cfg
                    .stream
                    .as_ref()
                    .map(|h| Box::new(ShardStream::new(h.clone(), index as u64))),
            })
            .collect();
        Ok(RoutedPlane { shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A producer-side handle routing events to the owning shard's ring.
    pub fn handle(&self) -> RoutedIngestHandle {
        RoutedIngestHandle {
            rings: self.shards.iter().map(|s| Arc::clone(&s.ring)).collect(),
        }
    }

    /// Mutable access to the shards (single-threaded driving).
    pub fn shards_mut(&mut self) -> &mut [RoutedShard] {
        &mut self.shards
    }

    /// Takes the shards out, one per consumer thread.
    pub fn into_shards(self) -> Vec<RoutedShard> {
        self.shards
    }
}

/// Merges per-shard bundles into `serve.shard<i>.*` and per-link
/// counters into `net.link<j>.*` (each link lives on exactly one shard,
/// so the link namespaces never collide).
pub fn routed_plane_snapshot(shards: &[RoutedShard]) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::new();
    for shard in shards {
        let (shard_bundle, link_bundles) = shard.metrics_snapshot();
        out.merge_prefixed(&format!("serve.shard{}", shard.index), &shard_bundle);
        for (link, bundle) in link_bundles {
            out.merge_prefixed(&format!("net.link{link}"), &bundle);
        }
    }
    out
}

/// Producer-side handle: routes each event to the ring of the shard
/// owning its link (same link hash as the single-link plane).
#[derive(Clone)]
pub struct RoutedIngestHandle {
    rings: Vec<Arc<IngestRing<RoutedShardEvent>>>,
}

impl RoutedIngestHandle {
    /// The shard owning `link`.
    pub fn shard_of(&self, link: LinkId) -> usize {
        crate::plane::shard_of(link, self.rings.len())
    }

    /// Enqueues `event` on the owning shard's ring, or returns it when
    /// that ring is full (backpressure).
    pub fn try_send(&self, event: RoutedShardEvent) -> Result<(), RoutedShardEvent> {
        self.rings[self.shard_of(event.link())].try_push(event)
    }
}

// ---------------------------------------------------------------------
// Replay drivers
// ---------------------------------------------------------------------

/// Routed replay configuration.
#[derive(Debug, Clone)]
pub struct RoutedReplayConfig {
    /// Plane shape (shards, ring capacity, metrics mode).
    pub plane: RoutedPlaneConfig,
    /// Producer threads (threaded replay only); links are partitioned
    /// `link.index() % producers` so per-link order is preserved.
    pub producers: usize,
    /// Stamp each reserve at enqueue time so hop-0 decisions carry
    /// ingest-to-decision latency.
    pub stamp_latency: bool,
}

impl Default for RoutedReplayConfig {
    fn default() -> Self {
        RoutedReplayConfig {
            plane: RoutedPlaneConfig::default(),
            producers: 1,
            stamp_latency: false,
        }
    }
}

/// What a routed replay produced.
#[derive(Debug)]
pub struct RoutedReplayOutcome {
    /// Decision sequence per route, indexed by route id, in seq order.
    pub per_route: Vec<Vec<RouteDecision>>,
    /// Total decisions made (one per request, not per hop).
    pub decisions: u64,
    /// Total admits.
    pub admitted: u64,
    /// End-to-end wall time.
    pub elapsed: Duration,
    /// The merged `serve.shard<i>.*` / `net.link<j>.*` metrics bundle.
    pub snapshot: MetricsSnapshot,
}

impl RoutedReplayOutcome {
    /// Total rejects.
    pub fn rejected(&self) -> u64 {
        self.decisions - self.admitted
    }

    /// The canonical byte encoding of one route's decision sequence
    /// (what the routed invariance suite compares).
    pub fn encode_route(&self, route: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for d in &self.per_route[route] {
            d.encode_into(&mut out);
        }
        out
    }

    /// All recorded hop-0 latencies, in decision order.
    pub fn latencies_ns(&self) -> Vec<u64> {
        self.per_route
            .iter()
            .flatten()
            .filter_map(|d| d.latency_ns)
            .collect()
    }
}

fn to_routed_event(
    topology: &Topology,
    link: LinkId,
    ev: &RoutedEvent,
    stamp: bool,
) -> RoutedShardEvent {
    match ev {
        RoutedEvent::Measure { t, rates } => RoutedShardEvent::Measure {
            link,
            t: *t,
            rates: rates.clone(),
        },
        RoutedEvent::Request { route, seq, .. } => RoutedShardEvent::Reserve {
            link,
            seq: *seq,
            hop: topology
                .hop_index(*route, link)
                .expect("request events only appear on their route's hop links")
                as u8,
            enqueued: stamp.then(Instant::now),
        },
    }
}

fn fold_routed(
    workload: &RoutedWorkload,
    shard_decisions: Vec<Vec<RouteDecision>>,
    elapsed: Duration,
    snapshot: MetricsSnapshot,
) -> RoutedReplayOutcome {
    let mut per_route: Vec<Vec<RouteDecision>> = vec![Vec::new(); workload.topology().routes()];
    let mut decisions = 0;
    let mut admitted = 0;
    for out in shard_decisions {
        for d in out {
            decisions += 1;
            admitted += d.admit as u64;
            per_route[d.route.index()].push(d);
        }
    }
    RoutedReplayOutcome {
        per_route,
        decisions,
        admitted,
        elapsed,
        snapshot,
    }
}

/// The single-threaded serial reference: one shard, events applied in
/// the workload's canonical order, the plane settled after every event.
/// Defines the decision stream every sharded run must reproduce.
pub fn routed_replay_serial(
    cfg: &RoutedReplayConfig,
    make: ControllerFactory,
    workload: &RoutedWorkload,
) -> Result<RoutedReplayOutcome, ServeError> {
    let plane_cfg = RoutedPlaneConfig {
        shards: 1,
        ..cfg.plane.clone()
    };
    let mut plane = RoutedPlane::for_workload(&plane_cfg, workload, make)?;
    let topology = Arc::clone(workload.topology());
    let mut out = Vec::new();
    let start = Instant::now();
    {
        let shard = &mut plane.shards_mut()[0];
        for (link, ev) in workload.canonical_events() {
            shard.apply(
                to_routed_event(&topology, link, ev, cfg.stamp_latency),
                &mut out,
            );
            while shard.pump(&mut out) > 0 {}
        }
        while shard.pump(&mut out) > 0 {}
        assert!(
            !shard.has_parked(),
            "a complete workload leaves no dangling reserves"
        );
    }
    let elapsed = start.elapsed();
    let snapshot = routed_plane_snapshot(plane.shards_mut());
    Ok(fold_routed(workload, vec![out], elapsed, snapshot))
}

/// The sharded routed replay: `cfg.producers` producer threads push
/// per-link streams through the rings, one consumer per shard drains,
/// votes, parks, and commits. Per-route decision sequences match
/// [`routed_replay_serial`] byte for byte — see the module docs.
pub fn routed_replay_threaded(
    cfg: &RoutedReplayConfig,
    make: ControllerFactory,
    workload: &RoutedWorkload,
) -> Result<RoutedReplayOutcome, ServeError> {
    if cfg.producers == 0 {
        return Err(ServeError::ZeroProducers);
    }
    let plane = RoutedPlane::for_workload(&cfg.plane, workload, make)?;
    let handle = plane.handle();
    let shards = plane.into_shards();
    let topology = Arc::clone(workload.topology());
    let producers = cfg.producers;
    let stamp = cfg.stamp_latency;
    let done = std::sync::atomic::AtomicUsize::new(0);

    let start = Instant::now();
    let (shards, shard_decisions) = std::thread::scope(|s| {
        let consumers: Vec<_> = shards
            .into_iter()
            .map(|mut shard| {
                let done = &done;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        if shard.drain_into(&mut out) > 0 {
                            continue;
                        }
                        if done.load(Ordering::Acquire) == producers {
                            // All enqueues happen-before the final
                            // counter increment, so an empty drain with
                            // nothing parked proves completion. A parked
                            // link waits for another shard's vote — keep
                            // pumping until the verdict lands.
                            if shard.drain_into(&mut out) == 0 && !shard.has_parked() {
                                break;
                            }
                        }
                        std::thread::yield_now();
                    }
                    (shard, out)
                })
            })
            .collect();
        for p in 0..producers {
            let handle = handle.clone();
            let done = &done;
            let topology = &topology;
            s.spawn(move || {
                for (link, ev) in workload.canonical_events() {
                    if link.index() % producers != p {
                        continue;
                    }
                    let mut event = to_routed_event(topology, link, ev, stamp);
                    while let Err(back) = handle.try_send(event) {
                        event = back;
                        std::thread::yield_now();
                    }
                }
                done.fetch_add(1, Ordering::Release);
            });
        }
        let mut shards_back = Vec::with_capacity(consumers.len());
        let mut decisions = Vec::with_capacity(consumers.len());
        for c in consumers {
            let (shard, out) = c.join().expect("routed consumer thread panicked");
            shards_back.push(shard);
            decisions.push(out);
        }
        (shards_back, decisions)
    });
    let elapsed = start.elapsed();
    let snapshot = routed_plane_snapshot(&shards);
    Ok(fold_routed(workload, shard_decisions, elapsed, snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::certainty_equivalent_factory;
    use mbac_sim::{RoutedLoad, RoutedLoadConfig, SessionBuilder};
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn workload(topology: Topology, noise_sd: f64) -> RoutedWorkload {
        let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let load = RoutedLoad {
            model: &model,
            cfg: RoutedLoadConfig {
                topology: Arc::new(topology),
                flows_per_route: 5,
                ticks: 20,
                tick: 0.4,
                requests_per_tick: 2,
                mean_holding: 4.0,
                noise_sd,
                seed: 11,
            },
        };
        SessionBuilder::new().run(&load).unwrap()
    }

    #[test]
    fn serial_replay_decides_every_request() {
        let w = workload(Topology::parking_lot(3, 14.0), 0.05);
        let make = certainty_equivalent_factory(1e-2, 2.0);
        let out = routed_replay_serial(&RoutedReplayConfig::default(), make, &w).unwrap();
        assert_eq!(out.decisions as usize, w.total_requests());
        assert!(out.admitted > 0, "some requests must be admitted");
        assert!(out.rejected() > 0, "capacity 10 must reject some");
        for route in 0..w.topology().routes() {
            assert_eq!(out.per_route[route].len(), 20 * 2);
            // Per-route decisions arrive in seq order.
            for pair in out.per_route[route].windows(2) {
                assert!(pair[0].seq < pair[1].seq);
            }
        }
    }

    #[test]
    fn rejection_records_the_offending_hop() {
        // Route 0 crosses every link of the parking lot; a rejection on
        // it must name a hop, and every per-hop record must be present.
        let w = workload(Topology::parking_lot(3, 6.0), 0.0);
        let make = certainty_equivalent_factory(1e-2, 2.0);
        let out = routed_replay_serial(&RoutedReplayConfig::default(), make, &w).unwrap();
        let long = &out.per_route[0];
        assert!(long.iter().any(|d| !d.admit), "tight capacity must reject");
        for d in long {
            assert_eq!(d.hops.len(), 3);
            if d.admit {
                assert_eq!(d.reject_hop, None);
                assert!(d.hops.iter().all(|h| h.vote));
            } else {
                let r = d.reject_hop.expect("rejects name a hop") as usize;
                assert!(!d.hops[r].vote);
                assert!(d.hops[..r].iter().all(|h| h.vote));
            }
        }
    }

    #[test]
    fn threaded_replay_matches_serial_per_route() {
        let w = workload(Topology::star(4, 10.0), 0.05);
        let make = certainty_equivalent_factory(1e-2, 2.0);
        let reference =
            routed_replay_serial(&RoutedReplayConfig::default(), Arc::clone(&make), &w).unwrap();
        let cfg = RoutedReplayConfig {
            plane: RoutedPlaneConfig {
                shards: 3,
                ring_capacity: 16, // small: exercises backpressure
                metrics: MetricsMode::Enabled,
                stream: None,
            },
            producers: 2,
            stamp_latency: false,
        };
        let sharded = routed_replay_threaded(&cfg, make, &w).unwrap();
        assert_eq!(sharded.decisions, reference.decisions);
        for route in 0..w.topology().routes() {
            assert_eq!(
                sharded.encode_route(route),
                reference.encode_route(route),
                "route {route} diverged"
            );
        }
    }

    #[test]
    fn snapshot_namespaces_shards_and_links() {
        let w = workload(Topology::parking_lot(2, 10.0), 0.0);
        let make = certainty_equivalent_factory(1e-2, 2.0);
        let cfg = RoutedReplayConfig {
            plane: RoutedPlaneConfig {
                metrics: MetricsMode::Enabled,
                ..RoutedPlaneConfig::default()
            },
            ..RoutedReplayConfig::default()
        };
        let out = routed_replay_serial(&cfg, make, &w).unwrap();
        match out.snapshot.get("serve.shard0.requests") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, out.decisions),
            other => panic!("{other:?}"),
        }
        // Every reserve either committed or aborted, per link.
        for link in 0..2 {
            let get = |name: &str| match out.snapshot.get(&format!("net.link{link}.{name}")) {
                Some(MetricValue::Counter(c)) => c.count,
                other => panic!("net.link{link}.{name}: {other:?}"),
            };
            assert!(get("reserves") > 0);
            assert_eq!(get("commits") + get("aborts"), get("reserves"));
            assert!(get("measures") > 0);
        }
    }
}
