//! The closed-loop load generator: replays Scenario-generated traffic
//! as admission requests and measures decision latency and throughput.
//!
//! "Closed loop" here is the backpressure sense: the bounded ingest
//! rings cap the outstanding-event window, so producers block (yield)
//! when a shard falls behind instead of queueing unboundedly — measured
//! latency is ingest-to-decision under a stable offered load, not a
//! growing queue artifact.
//!
//! Single-core hosts cannot produce meaningful *threaded* throughput:
//! producers, consumers, and the generator all time-share one CPU, so a
//! multi-shard run measures scheduler churn, not the plane. Mirroring
//! the `replication_scaling` gate in `bench_json`,
//! [`closed_loop_with_parallelism`] falls back to the serial reference
//! and sets [`BenchReport::skipped_single_core`] when the injected
//! parallelism is 1 and a threaded shape was requested — the recorded
//! numbers are then honest serial-path figures, marked as such.

use crate::plane::{certainty_equivalent_factory, PlaneConfig, ServeError};
use crate::replay::{replay_serial, replay_threaded, ReplayConfig};
use crate::routed::{
    routed_replay_serial, routed_replay_threaded, RoutedPlaneConfig, RoutedReplayConfig,
};
use mbac_core::topology::Topology;
use mbac_metrics::StreamHandle;
use mbac_num::quantile;
use mbac_sim::{
    ConfigError, Engine, MetricsMode, RequestLoad, RequestLoadConfig, RoutedLoad, RoutedLoadConfig,
    SessionBuilder,
};
use mbac_traffic::process::SourceModel;
use std::sync::Arc;

/// Closed-loop bench configuration: workload shape plus plane shape.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Links (one request stream per link).
    pub links: usize,
    /// Steady-state flows per link in the generated workload.
    pub flows_per_link: usize,
    /// Measurement ticks per link.
    pub ticks: usize,
    /// Measurement period.
    pub tick: f64,
    /// Admission requests after each measurement.
    pub requests_per_tick: usize,
    /// Mean holding time of the churned workload flows.
    pub mean_holding: f64,
    /// Workload generation seed.
    pub seed: u64,
    /// Flow engine generating the workload.
    pub engine: Engine,
    /// Decision-plane shards.
    pub shards: usize,
    /// Producer threads feeding the rings.
    pub producers: usize,
    /// Per-shard ingest-ring capacity (the outstanding-event window).
    pub ring_capacity: usize,
    /// Per-link capacity the controllers decide against.
    pub capacity: f64,
    /// Certainty-equivalent target probability.
    pub p_ce: f64,
    /// Estimator memory time-scale.
    pub t_m: f64,
    /// Streaming-emission handle passed through to the plane. When set,
    /// per-shard metrics collection is enabled (without timing) so the
    /// stream's interval records carry the decision counters.
    pub stream: Option<StreamHandle>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            links: 32,
            flows_per_link: 50,
            ticks: 200,
            tick: 0.1,
            requests_per_tick: 4,
            mean_holding: 10.0,
            seed: 7,
            engine: Engine::Batched,
            shards: 1,
            producers: 1,
            ring_capacity: 1024,
            capacity: 60.0,
            p_ce: 1e-2,
            t_m: 5.0,
            stream: None,
        }
    }
}

/// What went wrong setting up or running a bench.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// The workload configuration was rejected.
    Config(ConfigError),
    /// The plane/replay configuration was rejected.
    Serve(ServeError),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Config(e) => e.fmt(f),
            BenchError::Serve(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<ConfigError> for BenchError {
    fn from(e: ConfigError) -> Self {
        BenchError::Config(e)
    }
}

impl From<ServeError> for BenchError {
    fn from(e: ServeError) -> Self {
        BenchError::Serve(e)
    }
}

/// One closed-loop run's results.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"serial"` (single-threaded reference path) or `"threaded"`
    /// (producers + per-shard consumers).
    pub mode: &'static str,
    /// Shards actually used.
    pub shards: usize,
    /// Producer threads actually used.
    pub producers: usize,
    /// Total admission decisions made.
    pub decisions: u64,
    /// Admits.
    pub admitted: u64,
    /// Rejects.
    pub rejected: u64,
    /// Total workload events replayed (measurements + requests).
    pub events: u64,
    /// End-to-end replay wall time.
    pub elapsed_secs: f64,
    /// Sustained decision throughput.
    pub decisions_per_sec: f64,
    /// Median decision latency (ingest→decision when threaded, bare
    /// decide when serial), nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile decision latency, nanoseconds.
    pub p99_ns: f64,
    /// Mean decision latency, nanoseconds.
    pub mean_ns: f64,
    /// `available_parallelism()` observed on this host.
    pub available_parallelism: usize,
    /// `true` when a threaded shape was requested but the host has one
    /// core, so the run fell back to the serial reference (the recorded
    /// throughput is serial-path, not a scaling claim).
    pub skipped_single_core: bool,
}

/// The host's available parallelism (1 when undeterminable).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs the closed-loop bench: generates the workload through the
/// Session pipeline, replays it through the plane, and summarizes
/// latency/throughput. The host's parallelism is injected (pass
/// [`host_parallelism()`] for the real machine; tests force both the
/// gated and ungated paths regardless of the actual host).
pub fn closed_loop_with_parallelism(
    cfg: &BenchConfig,
    model: &dyn SourceModel,
    parallelism: usize,
) -> Result<BenchReport, BenchError> {
    if cfg.shards == 0 {
        return Err(ServeError::ZeroShards.into());
    }
    if cfg.producers == 0 {
        return Err(ServeError::ZeroProducers.into());
    }
    let load = RequestLoad {
        model,
        cfg: RequestLoadConfig {
            links: cfg.links,
            flows_per_link: cfg.flows_per_link,
            ticks: cfg.ticks,
            tick: cfg.tick,
            requests_per_tick: cfg.requests_per_tick,
            mean_holding: cfg.mean_holding,
            seed: cfg.seed,
        },
    };
    let workload = SessionBuilder::new().engine(cfg.engine).run(&load)?;

    let threaded_requested = cfg.shards > 1 || cfg.producers > 1;
    let single_core = parallelism == 1;
    let skipped_single_core = threaded_requested && single_core;
    let run_threaded = threaded_requested && !single_core;

    let replay_cfg = ReplayConfig {
        plane: PlaneConfig {
            shards: if run_threaded { cfg.shards } else { 1 },
            capacity: cfg.capacity,
            ring_capacity: cfg.ring_capacity,
            metrics: if cfg.stream.is_some() {
                MetricsMode::Streaming
            } else {
                MetricsMode::Disabled
            },
            stream: cfg.stream.clone(),
        },
        producers: if run_threaded { cfg.producers } else { 1 },
        stamp_latency: true,
    };
    let make = certainty_equivalent_factory(cfg.p_ce, cfg.t_m);
    let outcome = if run_threaded {
        replay_threaded(&replay_cfg, make, &workload)?
    } else {
        replay_serial(&replay_cfg, make, &workload)?
    };

    let latencies: Vec<f64> = outcome.latencies_ns().iter().map(|&ns| ns as f64).collect();
    let (p50_ns, p99_ns, mean_ns) = if latencies.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            quantile(&latencies, 0.5),
            quantile(&latencies, 0.99),
            latencies.iter().sum::<f64>() / latencies.len() as f64,
        )
    };
    let elapsed_secs = outcome.elapsed.as_secs_f64();
    Ok(BenchReport {
        mode: if run_threaded { "threaded" } else { "serial" },
        shards: replay_cfg.plane.shards,
        producers: replay_cfg.producers,
        decisions: outcome.decisions,
        admitted: outcome.admitted,
        rejected: outcome.rejected(),
        events: workload.total_events() as u64,
        elapsed_secs,
        decisions_per_sec: if elapsed_secs > 0.0 {
            outcome.decisions as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_ns,
        p99_ns,
        mean_ns,
        available_parallelism: parallelism,
        skipped_single_core,
    })
}

// ---------------------------------------------------------------------
// Routed (topology-shaped) bench
// ---------------------------------------------------------------------

/// Closed-loop bench over a routed [`Topology`] workload: multi-hop
/// requests joined by the two-phase reserve/commit of [`crate::routed`].
#[derive(Debug, Clone)]
pub struct RoutedBenchConfig {
    /// The network shape (links, capacities, routes).
    pub topology: Arc<Topology>,
    /// Steady-state flows per route in the generated workload.
    pub flows_per_route: usize,
    /// Measurement ticks.
    pub ticks: usize,
    /// Measurement period.
    pub tick: f64,
    /// Admission requests per route after each measurement.
    pub requests_per_tick: usize,
    /// Mean holding time of the churned workload flows.
    pub mean_holding: f64,
    /// Per-node measurement noise standard deviation (0 disables).
    pub noise_sd: f64,
    /// Workload generation seed.
    pub seed: u64,
    /// Flow engine generating the workload.
    pub engine: Engine,
    /// Decision-plane shards.
    pub shards: usize,
    /// Producer threads feeding the rings.
    pub producers: usize,
    /// Per-shard ingest-ring capacity.
    pub ring_capacity: usize,
    /// Certainty-equivalent target probability.
    pub p_ce: f64,
    /// Estimator memory time-scale.
    pub t_m: f64,
    /// Streaming-emission handle passed through to the plane. When set,
    /// per-shard metrics collection is enabled (without timing) so the
    /// stream's interval records carry the decision counters.
    pub stream: Option<StreamHandle>,
}

impl Default for RoutedBenchConfig {
    fn default() -> Self {
        RoutedBenchConfig {
            topology: Arc::new(Topology::parking_lot(3, 60.0)),
            flows_per_route: 25,
            ticks: 200,
            tick: 0.1,
            requests_per_tick: 4,
            mean_holding: 10.0,
            noise_sd: 0.0,
            seed: 7,
            engine: Engine::Batched,
            shards: 1,
            producers: 1,
            ring_capacity: 1024,
            p_ce: 1e-2,
            t_m: 5.0,
            stream: None,
        }
    }
}

/// Runs the routed closed-loop bench; detects host parallelism itself —
/// see [`routed_closed_loop_with_parallelism`] for the testable core.
pub fn routed_closed_loop(
    cfg: &RoutedBenchConfig,
    model: &dyn SourceModel,
) -> Result<BenchReport, BenchError> {
    routed_closed_loop_with_parallelism(cfg, model, host_parallelism())
}

/// [`routed_closed_loop`] with the host parallelism injected. Mirrors
/// [`closed_loop_with_parallelism`]: a threaded shape on a single-core
/// host falls back to the serial reference and sets
/// [`BenchReport::skipped_single_core`].
pub fn routed_closed_loop_with_parallelism(
    cfg: &RoutedBenchConfig,
    model: &dyn SourceModel,
    parallelism: usize,
) -> Result<BenchReport, BenchError> {
    if cfg.shards == 0 {
        return Err(ServeError::ZeroShards.into());
    }
    if cfg.producers == 0 {
        return Err(ServeError::ZeroProducers.into());
    }
    let load = RoutedLoad {
        model,
        cfg: RoutedLoadConfig {
            topology: Arc::clone(&cfg.topology),
            flows_per_route: cfg.flows_per_route,
            ticks: cfg.ticks,
            tick: cfg.tick,
            requests_per_tick: cfg.requests_per_tick,
            mean_holding: cfg.mean_holding,
            noise_sd: cfg.noise_sd,
            seed: cfg.seed,
        },
    };
    let workload = SessionBuilder::new().engine(cfg.engine).run(&load)?;

    let threaded_requested = cfg.shards > 1 || cfg.producers > 1;
    let single_core = parallelism == 1;
    let skipped_single_core = threaded_requested && single_core;
    let run_threaded = threaded_requested && !single_core;

    let replay_cfg = RoutedReplayConfig {
        plane: RoutedPlaneConfig {
            shards: if run_threaded { cfg.shards } else { 1 },
            ring_capacity: cfg.ring_capacity,
            metrics: if cfg.stream.is_some() {
                MetricsMode::Streaming
            } else {
                MetricsMode::Disabled
            },
            stream: cfg.stream.clone(),
        },
        producers: if run_threaded { cfg.producers } else { 1 },
        stamp_latency: true,
    };
    let make = certainty_equivalent_factory(cfg.p_ce, cfg.t_m);
    let outcome = if run_threaded {
        routed_replay_threaded(&replay_cfg, make, &workload)?
    } else {
        routed_replay_serial(&replay_cfg, make, &workload)?
    };

    let latencies: Vec<f64> = outcome.latencies_ns().iter().map(|&ns| ns as f64).collect();
    let (p50_ns, p99_ns, mean_ns) = if latencies.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            quantile(&latencies, 0.5),
            quantile(&latencies, 0.99),
            latencies.iter().sum::<f64>() / latencies.len() as f64,
        )
    };
    let elapsed_secs = outcome.elapsed.as_secs_f64();
    Ok(BenchReport {
        mode: if run_threaded { "threaded" } else { "serial" },
        shards: replay_cfg.plane.shards,
        producers: replay_cfg.producers,
        decisions: outcome.decisions,
        admitted: outcome.admitted,
        rejected: outcome.rejected(),
        events: workload.total_events() as u64,
        elapsed_secs,
        decisions_per_sec: if elapsed_secs > 0.0 {
            outcome.decisions as f64 / elapsed_secs
        } else {
            0.0
        },
        p50_ns,
        p99_ns,
        mean_ns,
        available_parallelism: parallelism,
        skipped_single_core,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};

    fn small() -> BenchConfig {
        BenchConfig {
            links: 3,
            flows_per_link: 5,
            ticks: 10,
            requests_per_tick: 2,
            capacity: 6.0,
            ..BenchConfig::default()
        }
    }

    fn model() -> RcbrModel {
        RcbrModel::new(RcbrConfig::paper_default(1.0))
    }

    #[test]
    fn serial_bench_reports_consistent_totals() {
        let report = closed_loop_with_parallelism(&small(), &model(), 1).unwrap();
        assert_eq!(report.mode, "serial");
        assert!(!report.skipped_single_core, "serial shape skips nothing");
        assert_eq!(report.decisions, 3 * 10 * 2);
        assert_eq!(report.admitted + report.rejected, report.decisions);
        assert_eq!(report.events, 3 * 10 * 3);
        assert!(report.decisions_per_sec > 0.0);
        assert!(report.p50_ns <= report.p99_ns);
        assert!(report.p99_ns > 0.0);
    }

    #[test]
    fn single_core_gate_falls_back_to_serial_with_marker() {
        let cfg = BenchConfig {
            shards: 4,
            producers: 2,
            ..small()
        };
        let report = closed_loop_with_parallelism(&cfg, &model(), 1).unwrap();
        assert!(report.skipped_single_core);
        assert_eq!(report.mode, "serial");
        assert_eq!(report.shards, 1, "fallback must not fake a sharded run");
        assert_eq!(report.producers, 1);
        assert_eq!(report.available_parallelism, 1);
    }

    #[test]
    fn multi_core_runs_threaded_without_marker() {
        let cfg = BenchConfig {
            shards: 2,
            producers: 2,
            ..small()
        };
        let report = closed_loop_with_parallelism(&cfg, &model(), 4).unwrap();
        assert!(!report.skipped_single_core);
        assert_eq!(report.mode, "threaded");
        assert_eq!(report.shards, 2);
        assert_eq!(report.decisions, 3 * 10 * 2);
    }

    fn small_routed() -> RoutedBenchConfig {
        RoutedBenchConfig {
            topology: Arc::new(Topology::parking_lot(3, 14.0)),
            flows_per_route: 5,
            ticks: 10,
            requests_per_tick: 2,
            ..RoutedBenchConfig::default()
        }
    }

    #[test]
    fn routed_serial_bench_reports_consistent_totals() {
        let report = routed_closed_loop_with_parallelism(&small_routed(), &model(), 1).unwrap();
        assert_eq!(report.mode, "serial");
        // 4 routes (the long path + 3 cross routes) × 10 ticks × 2.
        assert_eq!(report.decisions, 4 * 10 * 2);
        assert_eq!(report.admitted + report.rejected, report.decisions);
        assert!(report.p50_ns <= report.p99_ns);
    }

    #[test]
    fn routed_single_core_gate_falls_back_to_serial() {
        let cfg = RoutedBenchConfig {
            shards: 4,
            producers: 2,
            ..small_routed()
        };
        let report = routed_closed_loop_with_parallelism(&cfg, &model(), 1).unwrap();
        assert!(report.skipped_single_core);
        assert_eq!(report.mode, "serial");
        assert_eq!(report.shards, 1);
        let threaded = routed_closed_loop_with_parallelism(&cfg, &model(), 4).unwrap();
        assert!(!threaded.skipped_single_core);
        assert_eq!(threaded.mode, "threaded");
        assert_eq!(threaded.decisions, report.decisions);
        assert_eq!(threaded.admitted, report.admitted);
    }

    #[test]
    fn zero_shapes_are_rejected() {
        let cfg = BenchConfig {
            shards: 0,
            ..small()
        };
        assert_eq!(
            closed_loop_with_parallelism(&cfg, &model(), 1).unwrap_err(),
            BenchError::Serve(ServeError::ZeroShards)
        );
        let cfg = BenchConfig {
            links: 0,
            ..small()
        };
        assert!(matches!(
            closed_loop_with_parallelism(&cfg, &model(), 1),
            Err(BenchError::Config(ConfigError::ZeroReplications))
        ));
    }
}
