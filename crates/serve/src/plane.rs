//! The sharded decision plane: per-link controller state behind a
//! lock-free ingest ring, with a batched drain-then-decide API.
//!
//! # Architecture
//!
//! Links are hashed to shards (`splitmix64(link) % shards`); each shard
//! owns *all* state for its links — one [`MbacController`] (with its
//! decision memo) per link — plus one [`IngestRing`] of pending
//! [`ShardEvent`]s. Producers push measurement snapshots and admission
//! requests through an [`IngestHandle`]; the shard's consumer drains the
//! ring in order and applies events to per-link state. No state is
//! shared across shards, so shards need no synchronization beyond their
//! own ring.
//!
//! # The invariance argument
//!
//! The admit/reject sequence a link observes is a pure function of the
//! order in which *that link's* events are applied:
//!
//! 1. a link's events are pushed by a single producer, and the ring is
//!    per-producer FIFO (see [`crate::ring`]), so they reach the shard
//!    in per-link order;
//! 2. a link's state lives on exactly one shard, so its events are
//!    applied sequentially by one consumer in that arrival order;
//! 3. decisions for link *a* never read link *b*'s state.
//!
//! Therefore the per-link decision sequence is invariant to the shard
//! count, the producer count, and the cross-link interleaving — it
//! equals the single-threaded serial reference. `tests/invariance.rs`
//! proves this property over randomized workloads, shard counts 1..=8,
//! and both flow engines, comparing byte-encoded decisions.

use crate::ring::IngestRing;
use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_core::topology::LinkId;
use mbac_metrics::{
    Aggregated, Counter, FieldBuf, Histogram, MetricValue, MetricsSnapshot, Sampler, StreamHandle,
    StreamItem,
};
use mbac_sim::{MbacController, MetricsMode};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A rejected decision-plane configuration (the CLI renders these as
/// friendly messages with exit code 1, like `mbac_sim::ConfigError`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Zero shards requested.
    ZeroShards,
    /// Zero producer threads requested.
    ZeroProducers,
    /// Zero ring capacity requested.
    ZeroRingCapacity,
    /// A field that must be strictly positive was zero, negative or NaN.
    NonPositive {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ZeroShards => write!(f, "shards must be at least 1"),
            ServeError::ZeroProducers => write!(f, "producers must be at least 1"),
            ServeError::ZeroRingCapacity => write!(f, "ring capacity must be at least 1"),
            ServeError::NonPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

// ---------------------------------------------------------------------
// Link hashing
// ---------------------------------------------------------------------

/// The SplitMix64 finalizer (same avalanche mix `mbac_sim::rep_seed`
/// builds on): bijective on `u64`, so link ids with low-bit structure
/// still spread across shards.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard owning `link` in a plane of `shards` shards.
#[inline]
pub fn shard_of(link: LinkId, shards: usize) -> usize {
    (splitmix64(link.as_u64()) % shards as u64) as usize
}

// ---------------------------------------------------------------------
// Events and decisions
// ---------------------------------------------------------------------

/// One unit of ingest: what producers push into a shard's ring.
#[derive(Debug)]
pub enum ShardEvent {
    /// A measurement snapshot for `link`: per-flow instantaneous rates
    /// at time `t`. The snapshot length is the link's measured
    /// occupancy, which resynchronizes the plane's occupancy view.
    Measure {
        /// The link the measurement belongs to.
        link: LinkId,
        /// Measurement time.
        t: f64,
        /// Per-flow rates.
        rates: Box<[f64]>,
    },
    /// An admission request for `link`.
    Request {
        /// The link asking to admit one more flow.
        link: LinkId,
        /// Enqueue timestamp; when present, the decision records the
        /// queue+decide latency (machine-dependent — bench mode only).
        enqueued: Option<Instant>,
    },
}

impl ShardEvent {
    /// The link this event belongs to.
    pub fn link(&self) -> LinkId {
        match self {
            ShardEvent::Measure { link, .. } | ShardEvent::Request { link, .. } => *link,
        }
    }
}

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The link the request addressed.
    pub link: LinkId,
    /// Admit (`true`) or reject (`false`).
    pub admit: bool,
    /// The controller's admissible count at decision time (`None` on a
    /// cold start — no measurement yet — which fails safe to reject).
    pub admissible: Option<f64>,
    /// The link's occupancy *after* this decision.
    pub occupancy: u32,
    /// Ingest-to-decision latency, when the request carried a stamp.
    pub latency_ns: Option<u64>,
}

impl Decision {
    /// Appends the decision's canonical byte encoding: flags byte
    /// (bit 0 = admit, bit 1 = admissible present), admissible-count
    /// f64 bits (little-endian, zero when absent), occupancy
    /// (little-endian). Latency is deliberately excluded — it is a
    /// machine fact, not a decision. Bit-level equality of encodings is
    /// what the invariance suite compares.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut flags = self.admit as u8;
        if self.admissible.is_some() {
            flags |= 2;
        }
        out.push(flags);
        out.extend_from_slice(&self.admissible.map_or(0, f64::to_bits).to_le_bytes());
        out.extend_from_slice(&self.occupancy.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// Controller factory
// ---------------------------------------------------------------------

/// Builds one per-link controller; shared by every shard so all links
/// run the identical policy.
pub type ControllerFactory = Arc<dyn Fn() -> MbacController + Send + Sync>;

/// The paper's controller as a factory: a [`FilteredEstimator`] with
/// memory time-scale `t_m` feeding a [`CertaintyEquivalent`] criterion
/// at target probability `p_ce`. One policy allocation is shared across
/// every controller the factory builds (`Arc<P>` is itself an
/// `AdmissionPolicy` — the controller-sharing impl in `mbac-core`).
pub fn certainty_equivalent_factory(p_ce: f64, t_m: f64) -> ControllerFactory {
    let policy = Arc::new(CertaintyEquivalent::from_probability(p_ce));
    Arc::new(move || {
        MbacController::new(
            Box::new(FilteredEstimator::new(t_m)),
            Box::new(Arc::clone(&policy)),
        )
    })
}

// ---------------------------------------------------------------------
// Per-shard metrics
// ---------------------------------------------------------------------

/// Instrument bundle one shard records into. Counters are deterministic
/// for a fixed workload and shard count; the decision-latency histogram
/// is machine-dependent and therefore **timing-gated**, mirroring the
/// `pool.*` convention.
#[derive(Debug, Clone)]
pub(crate) struct ShardMetrics {
    pub(crate) measures: Counter,
    pub(crate) requests: Counter,
    pub(crate) admitted: Counter,
    pub(crate) rejected: Counter,
    pub(crate) batches: Counter,
    pub(crate) decision_ns: Histogram,
    pub(crate) timing: bool,
}

impl ShardMetrics {
    pub(crate) fn new(timing: bool) -> Self {
        ShardMetrics {
            measures: Counter::new(),
            requests: Counter::new(),
            admitted: Counter::new(),
            rejected: Counter::new(),
            batches: Counter::new(),
            decision_ns: Histogram::new(),
            timing,
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        out.insert("measures", MetricValue::Counter(self.measures.snapshot()));
        out.insert("requests", MetricValue::Counter(self.requests.snapshot()));
        out.insert("admitted", MetricValue::Counter(self.admitted.snapshot()));
        out.insert("rejected", MetricValue::Counter(self.rejected.snapshot()));
        out.insert("batches", MetricValue::Counter(self.batches.snapshot()));
        if self.timing {
            out.insert(
                "decision_ns",
                MetricValue::Histogram(self.decision_ns.snapshot()),
            );
        }
        out
    }

    /// Folds one decision's unit-of-work record. Counter updates are
    /// identical to the per-instrument calls this replaces; the latency
    /// histogram stays timing-gated.
    pub(crate) fn fold_decision(&mut self, e: &DecisionEntry) {
        self.requests.inc();
        if e.admit {
            self.admitted.inc();
        } else {
            self.rejected.inc();
        }
        if let (true, Some(ns)) = (self.timing, e.latency_ns) {
            self.decision_ns.record(ns as f64);
        }
    }
}

/// One admission decision's unit-of-work record: accumulated on the
/// stack while the decision is made, folded into the shard's
/// instruments once, and (in streaming mode) offered to the sampler.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecisionEntry {
    pub(crate) admit: bool,
    pub(crate) occupancy: u32,
    pub(crate) admissible: Option<f64>,
    pub(crate) latency_ns: Option<u64>,
}

impl DecisionEntry {
    /// The entry's fields as a sample payload.
    pub(crate) fn fields(&self) -> FieldBuf {
        let mut f = FieldBuf::new();
        f.push("admit", if self.admit { 1.0 } else { 0.0 });
        f.push("occupancy", f64::from(self.occupancy));
        if let Some(m) = self.admissible {
            f.push("admissible", m);
        }
        if let Some(ns) = self.latency_ns {
            f.push("latency_ns", ns as f64);
        }
        f
    }
}

/// Streaming-emission state of one shard: the shard index is the
/// producer stream, the per-shard decision count is the sequence.
/// Each link's decisions reach exactly one shard in per-link order, so
/// the (stream, seq) pairs — and therefore the sampler's keep set — are
/// deterministic for a fixed workload and shard count.
pub(crate) struct ShardStream {
    handle: StreamHandle,
    stream: u64,
    sampler: Sampler,
    flush_interval: u64,
    seq: u64,
}

impl ShardStream {
    pub(crate) fn new(handle: StreamHandle, stream: u64) -> Self {
        let sampler = handle.sampler_for(stream);
        let flush_interval = handle.flush_interval();
        ShardStream {
            handle,
            stream,
            sampler,
            flush_interval,
            seq: 0,
        }
    }

    /// Advances the stream by one folded decision, emitting a sampled
    /// raw record when the sampler keeps it. Returns `true` when a
    /// cumulative interval flush is due.
    pub(crate) fn advance(&mut self, e: &DecisionEntry) -> bool {
        self.seq += 1;
        if self.sampler.keep(self.seq) {
            self.handle.emit(StreamItem::Sample {
                stream: self.stream,
                seq: self.seq,
                // The decision plane has no simulation clock; samples
                // are ordered by `seq` alone.
                t: f64::NAN,
                fields: e.fields(),
            });
        }
        self.flush_interval > 0 && self.seq.is_multiple_of(self.flush_interval)
    }

    /// Emits one cumulative interval carrying `metrics`.
    pub(crate) fn emit_interval(&self, metrics: MetricsSnapshot) {
        self.handle.emit(StreamItem::Interval {
            stream: self.stream,
            seq: self.seq,
            t: f64::NAN,
            metrics,
        });
    }
}

// ---------------------------------------------------------------------
// Shard
// ---------------------------------------------------------------------

/// All per-link admission state for one link. `flows` is the plane's
/// occupancy view: resynchronized to the measured snapshot length on
/// every measurement, incremented provisionally on each admit between
/// measurements.
struct LinkState {
    ctl: MbacController,
    flows: u32,
}

/// One shard: the links it owns, their controllers, and its ingest ring.
pub struct Shard {
    index: usize,
    capacity: f64,
    ring: Arc<IngestRing<ShardEvent>>,
    links: HashMap<LinkId, LinkState>,
    make: ControllerFactory,
    metrics: Option<Box<ShardMetrics>>,
    stream: Option<Box<ShardStream>>,
}

impl Shard {
    /// This shard's index within the plane.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of links with materialized state on this shard.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Whether this shard's ring has no pending events (approximate
    /// while producers are running, exact once they have stopped).
    pub fn ring_is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    fn link_mut(&mut self, link: LinkId) -> &mut LinkState {
        self.links.entry(link).or_insert_with(|| LinkState {
            ctl: (self.make)(),
            flows: 0,
        })
    }

    /// Applies one event: a measurement feeds the link's estimator and
    /// resynchronizes occupancy; a request decides admit/reject and
    /// appends the decision.
    pub fn apply(&mut self, event: ShardEvent, out: &mut Vec<Decision>) {
        match event {
            ShardEvent::Measure { link, t, rates } => {
                let state = self.link_mut(link);
                state.ctl.observe(t, &rates);
                state.flows = rates.len() as u32;
                if let Some(m) = self.metrics.as_deref_mut() {
                    m.measures.inc();
                }
            }
            ShardEvent::Request { link, enqueued } => {
                let capacity = self.capacity;
                let state = self.link_mut(link);
                let admissible = state.ctl.admissible_count(capacity);
                // Cold start (no measurement yet) fails safe: reject.
                let admit = admissible.is_some_and(|m| f64::from(state.flows + 1) <= m);
                if admit {
                    state.flows += 1;
                }
                let occupancy = state.flows;
                let latency_ns =
                    enqueued.map(|at| u64::try_from(at.elapsed().as_nanos()).unwrap_or(u64::MAX));
                let entry = DecisionEntry {
                    admit,
                    occupancy,
                    admissible,
                    latency_ns,
                };
                if let Some(m) = self.metrics.as_deref_mut() {
                    m.fold_decision(&entry);
                }
                self.stream_decision(&entry);
                out.push(Decision {
                    link,
                    admit,
                    admissible,
                    occupancy,
                    latency_ns,
                });
            }
        }
    }

    /// Drains every event currently in the ring, in ring order,
    /// appending request decisions to `out`. Returns how many events
    /// were processed.
    pub fn drain_into(&mut self, out: &mut Vec<Decision>) -> usize {
        let mut n = 0;
        while let Some(ev) = self.ring.try_pop() {
            self.apply(ev, out);
            n += 1;
        }
        if n > 0 {
            if let Some(m) = self.metrics.as_deref_mut() {
                m.batches.inc();
            }
        }
        n
    }

    /// The batched admit/reject API: drains all pending measurement
    /// updates (and in-ring requests) first, then decides each direct
    /// request in order. This is the freshness contract — a decision
    /// never ignores a measurement that was already ingested.
    pub fn decide_batch(&mut self, requests: &[LinkId], out: &mut Vec<Decision>) {
        self.drain_into(out);
        for &link in requests {
            self.apply(
                ShardEvent::Request {
                    link,
                    enqueued: None,
                },
                out,
            );
        }
        if !requests.is_empty() {
            if let Some(m) = self.metrics.as_deref_mut() {
                m.batches.inc();
            }
        }
    }

    /// This shard's metrics bundle (empty when collection is disabled).
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .as_deref()
            .map(ShardMetrics::snapshot)
            .unwrap_or_default()
    }

    /// This shard's metrics under its plane-wide `serve.shard{i}.*`
    /// namespace — the shape interval records carry so a stream reader
    /// sees the same names as the merged plane snapshot.
    fn prefixed_snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        out.merge_prefixed(
            &format!("serve.shard{}", self.index),
            &self.metrics_snapshot(),
        );
        out
    }

    /// Advances the streaming state by one decision: sample emission,
    /// plus a cumulative interval flush when one is due.
    fn stream_decision(&mut self, e: &DecisionEntry) {
        let Some(s) = self.stream.as_deref_mut() else {
            return;
        };
        if s.advance(e) {
            let snap = self.prefixed_snapshot();
            if let Some(s) = self.stream.as_deref() {
                s.emit_interval(snap);
            }
        }
    }
}

impl Drop for Shard {
    /// Emits the final cumulative interval so every shard's totals are
    /// recoverable from the stream even with `flush_interval: 0`.
    fn drop(&mut self) {
        if let Some(s) = self.stream.take() {
            s.emit_interval(self.prefixed_snapshot());
        }
    }
}

// ---------------------------------------------------------------------
// Plane
// ---------------------------------------------------------------------

/// Decision-plane configuration.
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// Number of shards (link state partitions).
    pub shards: usize,
    /// Per-link capacity `c` the controllers decide against.
    pub capacity: f64,
    /// Ingest-ring capacity per shard (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Metrics collection mode; `EnabledWithTiming` additionally
    /// records the machine-dependent `serve.shard<i>.decision_ns`
    /// histogram.
    pub metrics: MetricsMode,
    /// Streaming-emission handle. When set, each shard samples raw
    /// decision records (stream = shard index, seq = decision count)
    /// and flushes cumulative interval snapshots through it; aggregates
    /// are unaffected.
    pub stream: Option<StreamHandle>,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            shards: 1,
            capacity: 100.0,
            ring_capacity: 1024,
            metrics: MetricsMode::Disabled,
            stream: None,
        }
    }
}

/// The sharded decision plane: construction, handle vending, and the
/// merged metrics view. Consumers take the shards out with
/// [`DecisionPlane::into_shards`] to run them on their own threads.
pub struct DecisionPlane {
    shards: Vec<Shard>,
}

impl DecisionPlane {
    /// Builds a plane with `cfg.shards` empty shards, each creating
    /// per-link controllers from `make` on first contact with a link.
    pub fn new(cfg: &PlaneConfig, make: ControllerFactory) -> Result<Self, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if cfg.ring_capacity == 0 {
            return Err(ServeError::ZeroRingCapacity);
        }
        if cfg.capacity <= 0.0 || cfg.capacity.is_nan() {
            return Err(ServeError::NonPositive {
                field: "capacity",
                value: cfg.capacity,
            });
        }
        let timing = cfg.metrics == MetricsMode::EnabledWithTiming;
        let shards = (0..cfg.shards)
            .map(|index| Shard {
                index,
                capacity: cfg.capacity,
                ring: Arc::new(IngestRing::with_capacity(cfg.ring_capacity)),
                links: HashMap::new(),
                make: Arc::clone(&make),
                metrics: (cfg.metrics != MetricsMode::Disabled)
                    .then(|| Box::new(ShardMetrics::new(timing))),
                stream: cfg
                    .stream
                    .as_ref()
                    .map(|h| Box::new(ShardStream::new(h.clone(), index as u64))),
            })
            .collect();
        Ok(DecisionPlane { shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `link`.
    pub fn shard_of(&self, link: LinkId) -> usize {
        shard_of(link, self.shards.len())
    }

    /// A producer-side handle routing events to the owning shard's ring.
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            rings: self.shards.iter().map(|s| Arc::clone(&s.ring)).collect(),
        }
    }

    /// Mutable access to the shards (single-threaded batch driving).
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Takes the shards out, one per consumer thread. The
    /// [`IngestHandle`]s stay valid — they share the rings.
    pub fn into_shards(self) -> Vec<Shard> {
        self.shards
    }

    /// The plane-wide metrics snapshot: every shard's bundle namespaced
    /// as `serve.shard<i>.*` (empty when collection is disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        plane_snapshot(&self.shards)
    }
}

/// Merges per-shard bundles into the `serve.shard<i>.*` namespace; also
/// used by drivers that have taken the shards out of the plane.
pub fn plane_snapshot(shards: &[Shard]) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::new();
    for shard in shards {
        out.merge_prefixed(
            &format!("serve.shard{}", shard.index),
            &shard.metrics_snapshot(),
        );
    }
    out
}

/// Producer-side handle: routes each event to the ring of the shard
/// owning its link. Cheap to clone; one per producer thread.
#[derive(Clone)]
pub struct IngestHandle {
    rings: Vec<Arc<IngestRing<ShardEvent>>>,
}

impl IngestHandle {
    /// The shard owning `link`.
    pub fn shard_of(&self, link: LinkId) -> usize {
        shard_of(link, self.rings.len())
    }

    /// Enqueues `event` on the owning shard's ring, or returns it when
    /// that ring is full (backpressure).
    pub fn try_send(&self, event: ShardEvent) -> Result<(), ShardEvent> {
        self.rings[self.shard_of(event.link())].try_push(event)
    }

    /// Enqueues `event`, spinning under backpressure until space frees.
    pub fn send_spin(&self, event: ShardEvent) {
        self.rings[self.shard_of(event.link())].push_spin(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_metrics::MetricValue;

    fn plane(shards: usize) -> DecisionPlane {
        DecisionPlane::new(
            &PlaneConfig {
                shards,
                capacity: 10.0,
                ring_capacity: 64,
                metrics: MetricsMode::Enabled,
                stream: None,
            },
            certainty_equivalent_factory(1e-2, 0.0),
        )
        .unwrap()
    }

    #[test]
    fn config_errors_are_typed() {
        let make = certainty_equivalent_factory(1e-2, 0.0);
        let bad = PlaneConfig {
            shards: 0,
            ..PlaneConfig::default()
        };
        assert_eq!(
            DecisionPlane::new(&bad, Arc::clone(&make)).err(),
            Some(ServeError::ZeroShards)
        );
        let bad = PlaneConfig {
            capacity: -1.0,
            ..PlaneConfig::default()
        };
        assert!(matches!(
            DecisionPlane::new(&bad, Arc::clone(&make)).err(),
            Some(ServeError::NonPositive {
                field: "capacity",
                ..
            })
        ));
        let bad = PlaneConfig {
            ring_capacity: 0,
            ..PlaneConfig::default()
        };
        assert_eq!(
            DecisionPlane::new(&bad, make).err(),
            Some(ServeError::ZeroRingCapacity)
        );
    }

    #[test]
    fn link_placement_is_total_and_stable() {
        let plane = plane(4);
        for link in (0..1000u32).map(LinkId) {
            let s = plane.shard_of(link);
            assert!(s < 4);
            assert_eq!(s, plane.shard_of(link), "placement must be stable");
            assert_eq!(s, plane.handle().shard_of(link));
        }
    }

    #[test]
    fn cold_start_rejects_and_measurement_enables() {
        let mut plane = plane(1);
        let mut out = Vec::new();
        let shard = &mut plane.shards_mut()[0];
        shard.decide_batch(&[LinkId(7)], &mut out);
        assert_eq!(out.len(), 1);
        assert!(!out[0].admit, "cold start must fail safe");
        assert_eq!(out[0].admissible, None);

        // Constant rates 1.0: σ̂ = 0 ⇒ fluid limit c/μ̂ = 10 flows.
        shard.apply(
            ShardEvent::Measure {
                link: LinkId(7),
                t: 0.0,
                rates: vec![1.0; 4].into_boxed_slice(),
            },
            &mut out,
        );
        out.clear();
        shard.decide_batch(&[LinkId(7); 7], &mut out);
        let admitted = out.iter().filter(|d| d.admit).count();
        // Occupancy resynced to 4; fluid limit 10 ⇒ 6 more fit.
        assert_eq!(admitted, 6);
        assert!(!out[6].admit, "the 7th must push past the fluid limit");
        assert_eq!(out[5].occupancy, 10);
    }

    #[test]
    fn drain_applies_ring_events_in_order() {
        let mut plane = plane(1);
        let handle = plane.handle();
        handle
            .try_send(ShardEvent::Measure {
                link: LinkId(1),
                t: 0.0,
                rates: vec![1.0; 2].into_boxed_slice(),
            })
            .unwrap();
        handle
            .try_send(ShardEvent::Request {
                link: LinkId(1),
                enqueued: None,
            })
            .unwrap();
        let mut out = Vec::new();
        let n = plane.shards_mut()[0].drain_into(&mut out);
        assert_eq!(n, 2);
        assert_eq!(out.len(), 1);
        assert!(out[0].admit, "measurement must precede the decision");
    }

    #[test]
    fn metrics_namespace_and_counts() {
        let mut plane = plane(2);
        let mut out = Vec::new();
        // Each link decided on its owning shard.
        let link_a = (0..).map(LinkId).find(|&l| plane.shard_of(l) == 0).unwrap();
        let link_b = (0..).map(LinkId).find(|&l| plane.shard_of(l) == 1).unwrap();
        let (a, b) = (plane.shard_of(link_a), plane.shard_of(link_b));
        plane.shards_mut()[a].decide_batch(&[link_a], &mut out);
        plane.shards_mut()[b].decide_batch(&[link_b, link_b], &mut out);
        let snap = plane.snapshot();
        match snap.get("serve.shard0.requests") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 1),
            other => panic!("{other:?}"),
        }
        match snap.get("serve.shard1.rejected") {
            Some(MetricValue::Counter(c)) => assert_eq!(c.count, 2),
            other => panic!("{other:?}"),
        }
        // Timing-gated histogram absent without EnabledWithTiming.
        assert!(snap.get("serve.shard0.decision_ns").is_none());
    }

    #[test]
    fn decision_encoding_is_injective_on_the_fields() {
        let base = Decision {
            link: LinkId(3),
            admit: true,
            admissible: Some(7.5),
            occupancy: 4,
            latency_ns: None,
        };
        let mut a = Vec::new();
        base.encode_into(&mut a);
        // Latency is excluded from the encoding.
        let mut b = Vec::new();
        Decision {
            latency_ns: Some(99),
            ..base
        }
        .encode_into(&mut b);
        assert_eq!(a, b);
        // Every decision field changes the bytes.
        for other in [
            Decision {
                admit: false,
                ..base
            },
            Decision {
                admissible: Some(7.5000001),
                ..base
            },
            Decision {
                admissible: None,
                ..base
            },
            Decision {
                occupancy: 5,
                ..base
            },
        ] {
            let mut c = Vec::new();
            other.encode_into(&mut c);
            assert_ne!(a, c, "{other:?}");
        }
    }
}
