//! # mbac-serve — the sharded admission decision plane
//!
//! Turns the paper's O(1) admission controller into a service shape:
//!
//! * [`ring::IngestRing`] — a bounded lock-free multi-producer
//!   measurement-ingest ring (per-producer FIFO, loss-free, visible
//!   backpressure);
//! * [`plane::DecisionPlane`] — per-link [`mbac_sim::MbacController`]
//!   state hashed across shards, drained and decided in batch
//!   ([`plane::Shard::decide_batch`] applies every pending measurement
//!   before any decision);
//! * [`replay`] — the single-threaded serial reference and the
//!   multi-producer sharded replay of a Scenario-generated
//!   [`mbac_sim::ServeWorkload`];
//! * [`routed`] — multi-hop decisions over the same sharded plane: a
//!   deterministic two-phase reserve/commit joins the per-hop votes of
//!   a routed request even when its hops land on different shards, with
//!   all-or-nothing occupancy so a rejection never leaks provisional
//!   load into earlier hops;
//! * [`bench::closed_loop_with_parallelism`] — the closed-loop load
//!   generator reporting p50/p99 decision latency and sustained
//!   decisions/sec, with the single-core gate (`skipped_single_core`)
//!   for hosts where threaded throughput would be meaningless.
//!
//! # Correctness bar
//!
//! Admission decisions under concurrency must match the serial
//! reference *exactly*: for any shard count, producer count, and flow
//! engine, each link's admit/reject sequence (with its admissible
//! counts, bit for bit) equals the single-threaded replay's. The
//! argument is per-link order preservation — see [`plane`]'s module
//! docs — and `tests/invariance.rs` proves it property-based.

#![warn(missing_docs)]

pub mod bench;
pub mod plane;
pub mod replay;
pub mod ring;
pub mod routed;

pub use bench::{
    closed_loop_with_parallelism, host_parallelism, routed_closed_loop,
    routed_closed_loop_with_parallelism, BenchConfig, BenchError, BenchReport, RoutedBenchConfig,
};

pub use plane::{
    certainty_equivalent_factory, plane_snapshot, shard_of, ControllerFactory, Decision,
    DecisionPlane, IngestHandle, PlaneConfig, ServeError, Shard, ShardEvent,
};
pub use replay::{replay_serial, replay_threaded, ReplayConfig, ReplayOutcome};
pub use ring::IngestRing;
pub use routed::{
    routed_plane_snapshot, routed_replay_serial, routed_replay_threaded, HopDecision,
    RouteDecision, RouteTable, RoutedIngestHandle, RoutedPlane, RoutedPlaneConfig,
    RoutedReplayConfig, RoutedReplayOutcome, RoutedShard, RoutedShardEvent,
};
