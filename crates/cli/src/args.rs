//! Minimal `--key value` argument parsing.
//!
//! Hand-rolled on purpose: the approved dependency set has no CLI
//! parser, the option surface is small, and owning it keeps error
//! messages domain-specific ("--p-q must be a probability in (0,1)").

use std::collections::BTreeMap;

/// Parsed flags: `--key value` pairs plus positional words.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

/// A parse/validation failure, formatted for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a token list (without the program/subcommand names).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("bare '--' is not a flag".into()));
                }
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("--{key} requires a value")))?;
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("--{key} given twice")));
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// Positional words.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// `f64` flag with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// Required `f64` flag.
    pub fn f64_required(&self, key: &str) -> Result<f64, ArgError> {
        let v = self
            .flags
            .get(key)
            .ok_or_else(|| ArgError(format!("--{key} is required")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'")))
    }

    /// Required raw string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("--{key} is required")))
    }

    /// Required `u64` flag.
    pub fn u64_required(&self, key: &str) -> Result<u64, ArgError> {
        let v = self
            .flags
            .get(key)
            .ok_or_else(|| ArgError(format!("--{key} is required")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'")))
    }

    /// `u64` flag with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    /// Probability flag (must lie strictly inside (0,1)) with default.
    pub fn prob_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        let p = self.f64_or(key, default)?;
        if p > 0.0 && p < 1.0 {
            Ok(p)
        } else {
            Err(ArgError(format!(
                "--{key} must be a probability in (0,1), got {p}"
            )))
        }
    }

    /// Rejects unknown flags (catches typos).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key}; expected one of: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = parse("gen --slots 1024 out.txt --hurst 0.8").unwrap();
        assert_eq!(a.positional(), &["gen".to_string(), "out.txt".to_string()]);
        assert_eq!(a.get("slots"), Some("1024"));
        assert_eq!(a.f64_or("hurst", 0.5).unwrap(), 0.8);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("").unwrap();
        assert_eq!(a.f64_or("n", 400.0).unwrap(), 400.0);
        assert_eq!(a.u64_or("seed", 7).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse("--n").is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(parse("--n 1 --n 2").is_err());
    }

    #[test]
    fn bad_number_is_error() {
        let a = parse("--n abc").unwrap();
        assert!(a.f64_or("n", 1.0).is_err());
        assert!(a.f64_required("n").is_err());
    }

    #[test]
    fn required_flags() {
        let a = parse("--flows 40 --observe 1,2").unwrap();
        assert_eq!(a.u64_required("flows").unwrap(), 40);
        assert_eq!(a.require("observe").unwrap(), "1,2");
        assert!(a.u64_required("missing").is_err());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn probability_validation() {
        let a = parse("--p-q 0.5").unwrap();
        assert_eq!(a.prob_or("p-q", 1e-3).unwrap(), 0.5);
        let b = parse("--p-q 2.0").unwrap();
        assert!(b.prob_or("p-q", 1e-3).is_err());
    }

    #[test]
    fn unknown_flag_detection() {
        let a = parse("--n 1 --typo 2").unwrap();
        assert!(a.expect_only(&["n"]).is_err());
        assert!(a.expect_only(&["n", "typo"]).is_ok());
    }
}
