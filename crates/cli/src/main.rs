//! `mbacctl` — robust measurement-based admission control, on the
//! command line.
//!
//! Subcommands:
//! * `design`   — the §5.3 robust design procedure (window + target);
//! * `theory`   — evaluate the overflow formulas at one parameter point;
//! * `simulate` — continuous-load simulation (RCBR or trace-driven);
//! * `serve-bench` — closed-loop decision-plane benchmark;
//! * `churn`    — flow-lifecycle churn smoke (timing-wheel calendar);
//! * `trace`    — generate / inspect LRD rate traces.

mod args;
mod commands;

use args::Args;

const TOP_USAGE: &str = "\
mbacctl <command> [flags]

commands:
  design     compute the robust MBAC configuration for a link
  theory     evaluate the Grossglauser-Tse overflow formulas
  simulate   run the continuous-load simulator
  serve-bench  benchmark the sharded admission decision plane
  churn      run the flow-lifecycle churn smoke at --flows scale
  trace      generate or inspect rate traces
  help       show usage for a command (e.g. `mbacctl help design`)";

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!("{TOP_USAGE}");
        std::process::exit(2);
    };
    let rest: Vec<String> = argv.collect();
    let result = match cmd.as_str() {
        "help" | "--help" | "-h" => {
            match rest.first().map(String::as_str) {
                Some("design") => println!("{}", commands::design::USAGE),
                Some("theory") => println!("{}", commands::theory::USAGE),
                Some("simulate") => println!("{}", commands::simulate::USAGE),
                Some("serve-bench") => println!("{}", commands::serve_bench::USAGE),
                Some("churn") => println!("{}", commands::churn::USAGE),
                Some("trace") => println!("{}", commands::trace::USAGE),
                _ => println!("{TOP_USAGE}"),
            }
            Ok(())
        }
        "design" => Args::parse(rest).and_then(|a| commands::design::run(&a)),
        "theory" => Args::parse(rest).and_then(|a| commands::theory::run(&a)),
        "simulate" => Args::parse(rest).and_then(|a| commands::simulate::run(&a)),
        "serve-bench" => Args::parse(rest).and_then(|a| commands::serve_bench::run(&a)),
        "churn" => Args::parse(rest).and_then(|a| commands::churn::run(&a)),
        "trace" => Args::parse(rest).and_then(|a| commands::trace::run(&a)),
        other => {
            eprintln!("unknown command '{other}'\n\n{TOP_USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
