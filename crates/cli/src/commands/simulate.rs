//! `mbacctl simulate` — run the continuous-load simulator from the
//! command line, with either RCBR sources or a trace file.

use crate::args::{ArgError, Args};
use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_sim::{run_continuous_metered, ContinuousConfig, FlowTable, MbacController, MetricsSink};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use mbac_traffic::trace::{Trace, TraceModel};
use std::sync::Arc;

/// Usage text.
pub const USAGE: &str = "\
mbacctl simulate --capacity <c> --holding <T_h>
                 [--trace <file> | --mean <mu> --sd <sigma> --t-c <T_c>]
                 [--t-m <T_m>] [--p-ce <p>] [--p-q <p>]
                 [--samples <n>] [--seed <s>] [--engine batched|boxed]
                 [--metrics-out <file|->]

Continuous-load (infinite arrival pressure) simulation of a filtered
certainty-equivalent MBAC. Defaults: RCBR sources with mean 1, sd 0.3,
T_c 1; T_m = T_h/sqrt(n) (the robust rule); p_ce = p_q = 1e-3.
--engine selects the flow engine: batched (struct-of-arrays kernels,
the default) or boxed (one heap process per flow); both produce
bit-identical results for the same seed.
--metrics-out writes the run's aggregated metrics as mbac-metrics/v1
JSON (see results/METRICS_schema.md) to the file, or to stdout for -.
--trace cannot be combined with the RCBR flags --mean/--sd/--t-c.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "capacity",
        "holding",
        "trace",
        "mean",
        "sd",
        "t-c",
        "t-m",
        "p-ce",
        "p-q",
        "samples",
        "seed",
        "engine",
        "metrics-out",
    ])?;
    if args.get("trace").is_some() {
        for rcbr_flag in ["mean", "sd", "t-c"] {
            if args.get(rcbr_flag).is_some() {
                return Err(ArgError(format!(
                    "--trace and --{rcbr_flag} are mutually exclusive: a trace \
                     file fixes the source statistics"
                )));
            }
        }
    }
    let table = match args.get("engine").unwrap_or("batched") {
        "batched" => FlowTable::new(),
        "boxed" => FlowTable::new_unbatched(),
        other => {
            return Err(ArgError(format!(
                "--engine must be batched or boxed, got {other}"
            )))
        }
    };
    let capacity = args.f64_required("capacity")?;
    let holding = args.f64_required("holding")?;
    if capacity <= 0.0 || holding <= 0.0 {
        return Err(ArgError("capacity and holding must be positive".into()));
    }
    let p_q = args.prob_or("p-q", 1e-3)?;
    let p_ce = args.prob_or("p-ce", p_q)?;
    let samples = args.u64_or("samples", 5000)?;
    let seed = args.u64_or("seed", 1)?;

    // Traffic: trace file or RCBR.
    let (model, t_c_scale): (Box<dyn SourceModel>, f64) = match args.get("trace") {
        Some(file) => {
            let f = std::fs::File::open(file)
                .map_err(|e| ArgError(format!("cannot open {file}: {e}")))?;
            let trace =
                Arc::new(Trace::read_from(f).map_err(|e| ArgError(format!("parse failed: {e}")))?);
            let slot = trace.slot();
            (Box::new(TraceModel::new(trace)), slot)
        }
        None => {
            let mean = args.f64_or("mean", 1.0)?;
            let sd = args.f64_or("sd", 0.3)?;
            let t_c = args.f64_or("t-c", 1.0)?;
            if mean <= 0.0 || sd < 0.0 || t_c <= 0.0 {
                return Err(ArgError("mean, t-c must be positive; sd >= 0".into()));
            }
            (
                Box::new(RcbrModel::new(RcbrConfig {
                    mean,
                    std_dev: sd,
                    t_c,
                    truncate_at_zero: true,
                })),
                t_c,
            )
        }
    };

    let n = capacity / model.mean();
    let t_h_tilde = holding / n.sqrt();
    let t_m = args.f64_or("t-m", t_h_tilde)?;
    if t_m < 0.0 {
        return Err(ArgError("--t-m must be >= 0".into()));
    }

    let mut ctl = MbacController::new(
        Box::new(FilteredEstimator::new(t_m)),
        Box::new(CertaintyEquivalent::from_probability(p_ce)),
    );
    let cfg = ContinuousConfig {
        capacity,
        mean_holding: holding,
        tick: (t_c_scale / 4.0).min(t_h_tilde / 4.0).max(1e-3),
        warmup: 10.0 * t_h_tilde.max(t_m).max(t_c_scale),
        sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_m, t_c_scale),
        target: p_q,
        max_samples: samples,
        seed,
    };
    println!(
        "simulating: n = {n:.1}, T~h = {t_h_tilde:.2}, T_m = {t_m:.2}, p_ce = {p_ce:.2e}, \
         tick = {:.3}, spacing = {:.1}",
        cfg.tick, cfg.sample_spacing
    );
    let mut sink = if args.get("metrics-out").is_some() {
        MetricsSink::enabled()
    } else {
        MetricsSink::disabled()
    };
    let rep = run_continuous_metered(&cfg, model.as_ref(), &mut ctl, table, &mut sink);
    if let Some(dest) = args.get("metrics-out") {
        let json = sink.snapshot().to_json();
        if dest == "-" {
            print!("{json}");
        } else {
            std::fs::write(dest, &json)
                .map_err(|e| ArgError(format!("cannot write {dest}: {e}")))?;
        }
    }
    println!("result:");
    println!(
        "  overflow probability : {:.4e}  [{:.1e}, {:.1e}]  ({:?}, {:?})",
        rep.pf.value, rep.pf.ci.lo, rep.pf.ci.hi, rep.pf.method, rep.pf.stopped
    );
    println!(
        "  vs target p_q        : {p_q:.1e}  ({})",
        if rep.pf.value <= p_q * 1.2 {
            "met"
        } else {
            "MISSED"
        }
    );
    println!(
        "  samples / overflows  : {} / {}",
        rep.pf.samples, rep.pf.overflows
    );
    println!(
        "  mean utilization     : {:.2}%",
        100.0 * rep.mean_utilization
    );
    println!("  mean flows in system : {:.1}", rep.mean_flows);
    println!(
        "  admitted / departed  : {} / {}",
        rep.admitted, rep.departed
    );
    println!("  simulated time       : {:.0}", rep.sim_time);
    Ok(())
}
