//! `mbacctl simulate` — run the load-model simulators from the command
//! line, with either RCBR sources or a trace file.
//!
//! All three load models run through the [`SessionBuilder`] pipeline;
//! invalid configurations surface as friendly [`ConfigError`] messages
//! (exit code 1), never as panics.

use super::{finish_stream, open_stream};
use crate::args::{ArgError, Args};
use mbac_core::admission::CertaintyEquivalent;
use mbac_core::estimators::FilteredEstimator;
use mbac_metrics::MetricsSnapshot;
use mbac_num::KernelDispatch;
use mbac_sim::{
    ConfigError, ContinuousConfig, ContinuousLoad, Engine, ImpulsiveConfig, ImpulsiveLoad,
    MbacController, MetricsMode, PoissonConfig, PoissonLoad, RoutedNetworkConfig,
    RoutedNetworkLoad, SessionBuilder,
};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use mbac_traffic::trace::{Trace, TraceModel};
use std::sync::Arc;

/// Usage text.
pub const USAGE: &str = "\
mbacctl simulate --capacity <c> [--load continuous|impulsive|poisson|routed]
                 [--trace <file> | --mean <mu> --sd <sigma> --t-c <T_c>]
                 [--seed <s>] [--engine batched|boxed]
                 [--kernel-dispatch scalar|wide] [--metrics-out <file|->]
                 [--metrics-stream <file>] [--stream-sample <fraction>]
                 [--stream-flush <n>] [--stream-ring <n>]
  continuous (default): --holding <T_h> [--t-m <T_m>] [--p-ce <p>]
                 [--p-q <p>] [--samples <n>]
  impulsive:     --flows <n> --observe <t1,t2,...> [--reps <n>]
                 [--holding <T_h>] [--p-ce <p>] [--workers <n>]
  poisson:       --lambda <rate> --holding <T_h> [--t-m <T_m>]
                 [--p-ce <p>] [--p-q <p>] [--samples <n>]
  routed:        --holding <T_h>
                 [--topology single|parking-lot:<h>|star:<l>]
                 [--ticks <n>] [--warmup <n>] [--flows-per-route <n>]
                 [--attempts <n>] [--noise-sd <sigma>] [--t-m <T_m>]
                 [--p-ce <p>] [--reps <n>] [--workers <n>]

Simulates a certainty-equivalent MBAC under one of the paper's three
load models, or a routed multi-hop network. continuous applies
infinite arrival pressure (§4), impulsive offers a burst at t = 0 and
watches it evolve (§3), poisson offers Poisson call arrivals at rate
lambda. routed runs per-link controllers on a multi-hop topology — a
flow is admitted only when every hop on its route accepts — and
reports per-link overflow/utilization and per-route admit/block
counts (shared links see correlated load; --noise-sd adds independent
per-node measurement noise). Defaults: RCBR sources with mean 1, sd
0.3, T_c 1; T_m = T_h/sqrt(n) (the robust rule); p_ce = p_q = 1e-3.
--engine selects the flow engine: batched (struct-of-arrays kernels,
the default) or boxed (one heap process per flow); both produce
bit-identical results for the same seed, as does any --workers count.
--kernel-dispatch pins the hot-kernel implementation: wide (lane-tiled
SIMD-friendly, the default) or scalar (the reference twins); the two
are bit-exact, so this only affects speed. Also settable through the
MBAC_KERNEL_DISPATCH environment variable; the flag wins.
--metrics-out writes the run's aggregated metrics as mbac-metrics/v1
JSON (see results/METRICS_schema.md) to the file, or to stdout for -.
--metrics-stream additionally emits bounded-memory streaming metrics
as mbac-metrics/v2-stream JSONL to the file: sampled raw records
(--stream-sample, default 0) plus cumulative interval snapshots every
--stream-flush folds (default 0 = end-of-replication only). The
stream is fed through a fixed-capacity ring (--stream-ring, default
1024); records that do not fit are dropped and counted, never
buffered unboundedly.
--trace cannot be combined with the RCBR flags --mean/--sd/--t-c.";

/// Renders a [`ConfigError`] as the CLI's error type.
fn config_err(e: ConfigError) -> ArgError {
    ArgError(format!("invalid configuration: {e}"))
}

/// Rejects non-positive values that derived quantities (`T̃_h`, `T_m`)
/// depend on *before* the session's own validation would catch them —
/// deriving from a bad value would produce NaNs first.
fn require_positive(field: &'static str, value: f64) -> Result<(), ArgError> {
    if value > 0.0 {
        Ok(())
    } else {
        Err(config_err(ConfigError::NonPositive { field, value }))
    }
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "load",
        "capacity",
        "holding",
        "trace",
        "mean",
        "sd",
        "t-c",
        "t-m",
        "p-ce",
        "p-q",
        "samples",
        "seed",
        "engine",
        "kernel-dispatch",
        "metrics-out",
        "metrics-stream",
        "stream-sample",
        "stream-flush",
        "stream-ring",
        "flows",
        "observe",
        "reps",
        "workers",
        "lambda",
        "topology",
        "ticks",
        "tick",
        "warmup",
        "flows-per-route",
        "attempts",
        "noise-sd",
    ])?;
    if args.get("trace").is_some() {
        for rcbr_flag in ["mean", "sd", "t-c"] {
            if args.get(rcbr_flag).is_some() {
                return Err(ArgError(format!(
                    "--trace and --{rcbr_flag} are mutually exclusive: a trace \
                     file fixes the source statistics"
                )));
            }
        }
    }
    // ConfigError renders "engine must be batched or boxed, got X";
    // prefix the flag dashes for the CLI surface.
    let engine = Engine::from_name(args.get("engine").unwrap_or("batched"))
        .map_err(|e| ArgError(format!("--{e}")))?;
    if let Some(mode) = args.get("kernel-dispatch") {
        KernelDispatch::parse(mode)
            .ok_or_else(|| {
                ArgError(format!(
                    "--kernel-dispatch must be scalar or wide, got {mode}"
                ))
            })?
            .set_global();
    }
    match args.get("load").unwrap_or("continuous") {
        "continuous" => run_continuous_load(args, engine),
        "impulsive" => run_impulsive_load(args, engine),
        "poisson" => run_poisson_load(args, engine),
        "routed" => run_routed_load(args, engine),
        other => Err(ArgError(format!(
            "--load must be continuous, impulsive, poisson or routed, got {other}"
        ))),
    }
}

/// Builds the traffic source: trace file or RCBR, plus the correlation
/// scale used for tick/spacing rules.
fn build_model(args: &Args) -> Result<(Box<dyn SourceModel>, f64), ArgError> {
    match args.get("trace") {
        Some(file) => {
            let f = std::fs::File::open(file)
                .map_err(|e| ArgError(format!("cannot open {file}: {e}")))?;
            let trace =
                Arc::new(Trace::read_from(f).map_err(|e| ArgError(format!("parse failed: {e}")))?);
            let slot = trace.slot();
            Ok((Box::new(TraceModel::new(trace)), slot))
        }
        None => {
            let mean = args.f64_or("mean", 1.0)?;
            let sd = args.f64_or("sd", 0.3)?;
            let t_c = args.f64_or("t-c", 1.0)?;
            if mean <= 0.0 || sd < 0.0 || t_c <= 0.0 {
                return Err(ArgError("mean, t-c must be positive; sd >= 0".into()));
            }
            Ok((
                Box::new(RcbrModel::new(RcbrConfig {
                    mean,
                    std_dev: sd,
                    t_c,
                    truncate_at_zero: true,
                })),
                t_c,
            ))
        }
    }
}

/// Writes the metrics snapshot to `--metrics-out` when requested.
fn write_metrics(args: &Args, snapshot: &MetricsSnapshot) -> Result<(), ArgError> {
    if let Some(dest) = args.get("metrics-out") {
        let json = snapshot.to_json();
        if dest == "-" {
            print!("{json}");
        } else {
            std::fs::write(dest, &json)
                .map_err(|e| ArgError(format!("cannot write {dest}: {e}")))?;
        }
    }
    Ok(())
}

/// The session metrics mode implied by `--metrics-out` and
/// `--metrics-stream`. Streaming collects everything snapshot mode
/// does, so the two flags compose.
fn metrics_mode(args: &Args) -> MetricsMode {
    if args.get("metrics-stream").is_some() {
        MetricsMode::Streaming
    } else if args.get("metrics-out").is_some() {
        MetricsMode::Enabled
    } else {
        MetricsMode::Disabled
    }
}

/// The continuous-load (infinite arrival pressure) mode.
fn run_continuous_load(args: &Args, engine: Engine) -> Result<(), ArgError> {
    let capacity = args.f64_required("capacity")?;
    let holding = args.f64_required("holding")?;
    require_positive("capacity", capacity)?;
    require_positive("holding", holding)?;
    let p_q = args.prob_or("p-q", 1e-3)?;
    let p_ce = args.prob_or("p-ce", p_q)?;
    let samples = args.u64_or("samples", 5000)?;
    let seed = args.u64_or("seed", 1)?;
    let (model, t_c_scale) = build_model(args)?;

    let n = capacity / model.mean();
    let t_h_tilde = holding / n.sqrt();
    let t_m = args.f64_or("t-m", t_h_tilde)?;
    if t_m < 0.0 {
        return Err(ArgError("--t-m must be >= 0".into()));
    }

    let mut ctl = MbacController::new(
        Box::new(FilteredEstimator::new(t_m)),
        Box::new(CertaintyEquivalent::from_probability(p_ce)),
    );
    let cfg = ContinuousConfig {
        capacity,
        mean_holding: holding,
        tick: (t_c_scale / 4.0).min(t_h_tilde / 4.0).max(1e-3),
        warmup: 10.0 * t_h_tilde.max(t_m).max(t_c_scale),
        sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_m, t_c_scale),
        target: p_q,
        max_samples: samples,
        seed,
    };
    let scenario = ContinuousLoad::new(&cfg, model.as_ref(), &mut ctl);
    let stream = open_stream(args)?;
    let mut session = SessionBuilder::new()
        .seed(seed)
        .engine(engine)
        .metrics(metrics_mode(args));
    if let Some(s) = &stream {
        session = session.stream(s.handle());
    }
    // Validate before printing the banner so bad configs fail cleanly.
    let (rep, snapshot) = session.run_local_metered(&scenario).map_err(config_err)?;
    println!(
        "simulating: n = {n:.1}, T~h = {t_h_tilde:.2}, T_m = {t_m:.2}, p_ce = {p_ce:.2e}, \
         tick = {:.3}, spacing = {:.1}",
        cfg.tick, cfg.sample_spacing
    );
    write_metrics(args, &snapshot)?;
    println!("result:");
    println!(
        "  overflow probability : {:.4e}  [{:.1e}, {:.1e}]  ({:?}, {:?})",
        rep.pf.value, rep.pf.ci.lo, rep.pf.ci.hi, rep.pf.method, rep.pf.stopped
    );
    println!(
        "  vs target p_q        : {p_q:.1e}  ({})",
        if rep.pf.value <= p_q * 1.2 {
            "met"
        } else {
            "MISSED"
        }
    );
    println!(
        "  samples / overflows  : {} / {}",
        rep.pf.samples, rep.pf.overflows
    );
    println!(
        "  mean utilization     : {:.2}%",
        100.0 * rep.mean_utilization
    );
    println!("  mean flows in system : {:.1}", rep.mean_flows);
    println!(
        "  admitted / departed  : {} / {}",
        rep.admitted, rep.departed
    );
    println!("  simulated time       : {:.0}", rep.sim_time);
    finish_stream(args, stream)?;
    Ok(())
}

/// The impulsive-load (burst at `t = 0`) mode.
fn run_impulsive_load(args: &Args, engine: Engine) -> Result<(), ArgError> {
    let capacity = args.f64_required("capacity")?;
    let flows = args.u64_required("flows")? as usize;
    let observe_times = parse_observe(args.require("observe")?)?;
    // The library accepts an empty list (M0-only studies); the CLI's
    // report is built around the per-time overflow lines, so demand one.
    if observe_times.is_empty() {
        return Err(config_err(ConfigError::EmptyObserveTimes));
    }
    let replications = args.u64_or("reps", 1000)? as usize;
    let seed = args.u64_or("seed", 1)?;
    let p_ce = args.prob_or("p-ce", 1e-3)?;
    let mean_holding = match args.get("holding") {
        Some(_) => Some(args.f64_required("holding")?),
        None => None,
    };
    let (model, _) = build_model(args)?;
    let policy = CertaintyEquivalent::from_probability(p_ce);
    let cfg = ImpulsiveConfig {
        capacity,
        estimation_flows: flows,
        mean_holding,
        observe_times,
        replications,
        seed,
    };
    let scenario = ImpulsiveLoad::new(&cfg, model.as_ref(), &policy);
    let stream = open_stream(args)?;
    let mut session = SessionBuilder::new()
        .seed(seed)
        .engine(engine)
        .metrics(metrics_mode(args));
    if let Some(s) = &stream {
        session = session.stream(s.handle());
    }
    if let Some(w) = args.get("workers") {
        let workers: usize = w
            .parse()
            .map_err(|_| ArgError(format!("--workers expects an integer, got '{w}'")))?;
        session = session.workers(workers);
    }
    let (rep, snapshot) = session.run_metered(&scenario).map_err(config_err)?;
    write_metrics(args, &snapshot)?;
    println!("impulsive load: n = {flows}, {replications} replications, p_ce = {p_ce:.2e}");
    println!(
        "  M0 admitted          : mean {:.1}, sd {:.2}",
        rep.m0.mean(),
        rep.m0.std_dev()
    );
    println!("result:");
    for (i, obs) in rep.observations.iter().enumerate() {
        println!(
            "  t = {:>8.2}: p_f = {:.4e}  ({} overflows), mean load {:.1}, mean flows {:.1}",
            obs.t,
            rep.pf_at(i),
            obs.overflows,
            obs.load.mean(),
            obs.mean_flows
        );
    }
    finish_stream(args, stream)?;
    Ok(())
}

/// The Poisson-arrival (finite `λ`) mode.
fn run_poisson_load(args: &Args, engine: Engine) -> Result<(), ArgError> {
    let capacity = args.f64_required("capacity")?;
    let arrival_rate = args.f64_required("lambda")?;
    let holding = args.f64_required("holding")?;
    require_positive("capacity", capacity)?;
    require_positive("holding", holding)?;
    let p_q = args.prob_or("p-q", 1e-3)?;
    let p_ce = args.prob_or("p-ce", p_q)?;
    let samples = args.u64_or("samples", 5000)?;
    let seed = args.u64_or("seed", 1)?;
    let (model, t_c_scale) = build_model(args)?;

    let n = (capacity / model.mean()).max(1.0);
    let t_h_tilde = holding / n.sqrt();
    let t_m = args.f64_or("t-m", t_h_tilde)?;
    if t_m < 0.0 {
        return Err(ArgError("--t-m must be >= 0".into()));
    }
    let mut ctl = MbacController::new(
        Box::new(FilteredEstimator::new(t_m)),
        Box::new(CertaintyEquivalent::from_probability(p_ce)),
    );
    let cfg = PoissonConfig {
        capacity,
        arrival_rate,
        mean_holding: holding,
        tick: (t_c_scale / 4.0).min(t_h_tilde / 4.0).max(1e-3),
        warmup: 10.0 * t_h_tilde.max(t_m).max(t_c_scale),
        sample_spacing: ContinuousConfig::paper_spacing(t_h_tilde, t_m, t_c_scale),
        target: p_q,
        max_samples: samples,
        seed,
    };
    let scenario = PoissonLoad::new(&cfg, model.as_ref(), &mut ctl);
    let stream = open_stream(args)?;
    let mut session = SessionBuilder::new()
        .seed(seed)
        .engine(engine)
        .metrics(metrics_mode(args));
    if let Some(s) = &stream {
        session = session.stream(s.handle());
    }
    let (rep, snapshot) = session.run_local_metered(&scenario).map_err(config_err)?;
    write_metrics(args, &snapshot)?;
    println!(
        "poisson load: lambda = {arrival_rate}, offered load {:.1} flows",
        arrival_rate * holding
    );
    println!("result:");
    println!(
        "  overflow probability : {:.4e}  [{:.1e}, {:.1e}]  ({:?}, {:?})",
        rep.pf.value, rep.pf.ci.lo, rep.pf.ci.hi, rep.pf.method, rep.pf.stopped
    );
    println!(
        "  blocking probability : {:.4}  ({} of {} arrivals admitted)",
        rep.blocking_probability, rep.admitted, rep.offered
    );
    println!(
        "  mean utilization     : {:.2}%",
        100.0 * rep.mean_utilization
    );
    println!("  mean flows in system : {:.1}", rep.mean_flows);
    finish_stream(args, stream)?;
    Ok(())
}

/// The routed multi-hop network mode: per-link controllers composed
/// along routes, admission only when every hop accepts.
fn run_routed_load(args: &Args, engine: Engine) -> Result<(), ArgError> {
    let capacity = args.f64_required("capacity")?;
    let holding = args.f64_required("holding")?;
    require_positive("capacity", capacity)?;
    require_positive("holding", holding)?;
    let spec = args.get("topology").unwrap_or("parking-lot:3");
    let topology = Arc::new(super::parse_topology(spec, capacity)?);
    let p_ce = args.prob_or("p-ce", 1e-3)?;
    let seed = args.u64_or("seed", 1)?;
    let (model, t_c_scale) = build_model(args)?;

    // The robust rule per link: every link shares the same capacity, so
    // the single-link sizing applies hop by hop.
    let n = (capacity / model.mean()).max(1.0);
    let t_h_tilde = holding / n.sqrt();
    let t_m = args.f64_or("t-m", t_h_tilde)?;
    if t_m < 0.0 {
        return Err(ArgError("--t-m must be >= 0".into()));
    }
    let noise_sd = args.f64_or("noise-sd", 0.0)?;
    if noise_sd < 0.0 {
        return Err(ArgError("--noise-sd must be >= 0".into()));
    }
    let ticks = args.u64_or("ticks", 2000)? as usize;
    let cfg = RoutedNetworkConfig {
        topology: Arc::clone(&topology),
        ticks,
        tick: args.f64_or("tick", (t_c_scale / 4.0).max(1e-3))?,
        warmup_ticks: args.u64_or("warmup", (ticks / 4) as u64)? as usize,
        initial_flows_per_route: args.u64_or("flows-per-route", 2)? as usize,
        mean_holding: holding,
        attempts_per_tick: args.u64_or("attempts", 2)? as usize,
        noise_sd,
        t_m,
        p_ce,
        replications: args.u64_or("reps", 8)? as usize,
        seed,
    };
    let scenario = RoutedNetworkLoad {
        model: model.as_ref(),
        cfg: cfg.clone(),
    };
    let stream = open_stream(args)?;
    let mut session = SessionBuilder::new()
        .seed(seed)
        .engine(engine)
        .metrics(metrics_mode(args));
    if let Some(s) = &stream {
        session = session.stream(s.handle());
    }
    if let Some(w) = args.get("workers") {
        let workers: usize = w
            .parse()
            .map_err(|_| ArgError(format!("--workers expects an integer, got '{w}'")))?;
        session = session.workers(workers);
    }
    let report = session.run(&scenario).map_err(config_err)?;
    write_metrics(args, &report.metrics_snapshot())?;
    println!(
        "routed load: topology = {spec} ({} links, {} routes), n = {n:.1} per link, \
         T_m = {t_m:.2}, p_ce = {p_ce:.2e}, {} replications",
        topology.links(),
        topology.routes(),
        cfg.replications
    );
    println!("result:");
    println!("  worst-link p_f       : {:.4e}", report.max_pf());
    for (i, link) in report.per_link.iter().enumerate() {
        println!(
            "  link {i}: p_f = {:.4e}, utilization {:.2}%, mean occupancy {:.1}",
            link.pf,
            100.0 * link.utilization,
            link.occupancy
        );
    }
    for (r, route) in report.per_route.iter().enumerate() {
        let total = route.admitted + route.blocked;
        let hops = topology.route(mbac_sim::RouteId(r as u32)).len();
        println!(
            "  route {r} ({hops} hop{}): admitted / blocked = {} / {}  ({:.1}% blocked)",
            if hops == 1 { "" } else { "s" },
            route.admitted,
            route.blocked,
            if total > 0 {
                100.0 * route.blocked as f64 / total as f64
            } else {
                0.0
            }
        );
    }
    finish_stream(args, stream)?;
    Ok(())
}

/// Parses a comma-separated observation-time list; empty entries are
/// skipped so `--observe ""` yields an empty list (which the impulsive
/// mode rejects with a friendly message).
fn parse_observe(spec: &str) -> Result<Vec<f64>, ArgError> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| ArgError(format!("--observe expects numbers, got '{s}'")))
        })
        .collect()
}
