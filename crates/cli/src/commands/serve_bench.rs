//! `mbacctl serve-bench` — the closed-loop decision-plane benchmark.
//!
//! Generates a multi-link request workload through the Session
//! pipeline, replays it through the sharded [`mbac_serve`] decision
//! plane, and reports decision latency percentiles plus sustained
//! throughput. Invalid configurations surface as friendly messages
//! (exit code 1), never as panics.
//!
//! The printed report keeps the *deterministic* decision totals in a
//! separate block from the *timing* figures, so byte-comparing the
//! first block across runs (e.g. scalar vs wide kernel dispatch)
//! checks the invariance contract without tripping on wall-clock
//! noise.

use super::{finish_stream, open_stream};
use crate::args::{ArgError, Args};
use mbac_num::KernelDispatch;
use mbac_serve::{
    closed_loop_with_parallelism, host_parallelism, routed_closed_loop_with_parallelism,
    BenchConfig, BenchReport, RoutedBenchConfig,
};
use mbac_sim::Engine;
use mbac_traffic::ar1::{Ar1Config, Ar1Model};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use mbac_traffic::trace::{Trace, TraceModel};
use std::sync::Arc;

/// Usage text.
pub const USAGE: &str = "\
mbacctl serve-bench [--links <n>] [--flows-per-link <n>] [--ticks <n>]
                    [--tick <dt>] [--requests-per-tick <n>]
                    [--holding <T_h>] [--capacity <c>] [--seed <s>]
                    [--shards <n>] [--producers <n>] [--ring-capacity <n>]
                    [--p-ce <p>] [--t-m <T_m>]
                    [--topology single|parking-lot:<h>|star:<l>]
                    [--flows-per-route <n>] [--noise-sd <sigma>]
                    [--source rcbr|ar1 | --trace <file>]
                    [--mean <mu> --sd <sigma> --t-c <T_c>]
                    [--engine batched|boxed] [--kernel-dispatch scalar|wide]
                    [--metrics-stream <file>] [--stream-sample <fraction>]
                    [--stream-flush <n>] [--stream-ring <n>]

Runs the closed-loop decision-plane benchmark: per-link measurement +
request streams generated through the Session pipeline are replayed
into the sharded serve plane, and the report summarizes the admission
decisions (deterministic for a fixed seed and shape, whatever the
shard/producer/engine/dispatch choice) plus p50/p99/mean decision
latency and sustained decisions/sec.
--shards/--producers pick the plane shape; on a single-core host a
threaded shape falls back to the serial reference and says so.
--ring-capacity bounds each shard's ingest ring (the closed loop's
outstanding-event window). --source picks the flow model (rcbr
default, or ar1); --trace replays an LRD trace file instead and
cannot be combined with --mean/--sd/--t-c.
--topology switches to the routed multi-hop bench: requests carry a
route and are admitted only if *every* hop accepts (two-phase
reserve/commit across shards). Every link gets --capacity;
--flows-per-route sizes the steady workload per route and --noise-sd
adds per-node measurement noise. --topology replaces --links and
--flows-per-link.
--metrics-stream emits bounded-memory streaming metrics as
mbac-metrics/v2-stream JSONL: per-decision samples (--stream-sample,
default 0) plus cumulative per-shard interval snapshots every
--stream-flush decisions (default 0 = end-of-run only); records that
do not fit the stream's ring (--stream-ring, default 1024) are
dropped and counted, never buffered unboundedly.";

/// Renders a bench/config error as the CLI's error type.
fn config_err(e: impl std::fmt::Display) -> ArgError {
    ArgError(format!("invalid configuration: {e}"))
}

/// Builds the per-flow traffic source for the generated workload.
fn build_model(args: &Args) -> Result<Box<dyn SourceModel>, ArgError> {
    let mean = args.f64_or("mean", 1.0)?;
    let sd = args.f64_or("sd", 0.3)?;
    let t_c = args.f64_or("t-c", 1.0)?;
    if mean <= 0.0 || sd < 0.0 || t_c <= 0.0 {
        return Err(ArgError("mean, t-c must be positive; sd >= 0".into()));
    }
    if let Some(file) = args.get("trace") {
        let f =
            std::fs::File::open(file).map_err(|e| ArgError(format!("cannot open {file}: {e}")))?;
        let trace =
            Arc::new(Trace::read_from(f).map_err(|e| ArgError(format!("parse failed: {e}")))?);
        return Ok(Box::new(TraceModel::new(trace)));
    }
    match args.get("source").unwrap_or("rcbr") {
        "rcbr" => Ok(Box::new(RcbrModel::new(RcbrConfig {
            mean,
            std_dev: sd,
            t_c,
            truncate_at_zero: true,
        }))),
        "ar1" => Ok(Box::new(Ar1Model::new(Ar1Config {
            mean,
            std_dev: sd,
            t_c,
            tick: (t_c / 20.0).max(1e-3),
            clamp_at_zero: true,
        }))),
        other => Err(ArgError(format!(
            "--source must be rcbr or ar1, got {other}"
        ))),
    }
}

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "links",
        "flows-per-link",
        "ticks",
        "tick",
        "requests-per-tick",
        "holding",
        "capacity",
        "seed",
        "shards",
        "producers",
        "ring-capacity",
        "p-ce",
        "t-m",
        "source",
        "trace",
        "mean",
        "sd",
        "t-c",
        "engine",
        "kernel-dispatch",
        "topology",
        "flows-per-route",
        "noise-sd",
        "metrics-stream",
        "stream-sample",
        "stream-flush",
        "stream-ring",
    ])?;
    if args.get("trace").is_some() {
        for model_flag in ["mean", "sd", "t-c", "source"] {
            if args.get(model_flag).is_some() {
                return Err(ArgError(format!(
                    "--trace and --{model_flag} are mutually exclusive: a trace \
                     file fixes the source statistics"
                )));
            }
        }
    }
    let engine = Engine::from_name(args.get("engine").unwrap_or("batched"))
        .map_err(|e| ArgError(format!("--{e}")))?;
    if let Some(mode) = args.get("kernel-dispatch") {
        KernelDispatch::parse(mode)
            .ok_or_else(|| {
                ArgError(format!(
                    "--kernel-dispatch must be scalar or wide, got {mode}"
                ))
            })?
            .set_global();
    }
    let model = build_model(args)?;

    if let Some(spec) = args.get("topology") {
        for link_flag in ["links", "flows-per-link"] {
            if args.get(link_flag).is_some() {
                return Err(ArgError(format!(
                    "--topology and --{link_flag} are mutually exclusive: the \
                     topology fixes the link set (use --flows-per-route)"
                )));
            }
        }
        let d = RoutedBenchConfig::default();
        let capacity = args.f64_or("capacity", 60.0)?;
        let noise_sd = args.f64_or("noise-sd", d.noise_sd)?;
        if noise_sd < 0.0 {
            return Err(ArgError("--noise-sd must be >= 0".into()));
        }
        let topology = Arc::new(super::parse_topology(spec, capacity)?);
        let banner = format!(
            "serve bench (routed): topology = {spec}, links = {}, routes = {}",
            topology.links(),
            topology.routes()
        );
        let stream = open_stream(args)?;
        let cfg = RoutedBenchConfig {
            topology,
            flows_per_route: args.u64_or("flows-per-route", d.flows_per_route as u64)? as usize,
            ticks: args.u64_or("ticks", d.ticks as u64)? as usize,
            tick: args.f64_or("tick", d.tick)?,
            requests_per_tick: args.u64_or("requests-per-tick", d.requests_per_tick as u64)?
                as usize,
            mean_holding: args.f64_or("holding", d.mean_holding)?,
            noise_sd,
            seed: args.u64_or("seed", d.seed)?,
            engine,
            shards: args.u64_or("shards", 1)? as usize,
            producers: args.u64_or("producers", 1)? as usize,
            ring_capacity: args.u64_or("ring-capacity", d.ring_capacity as u64)? as usize,
            p_ce: args.prob_or("p-ce", d.p_ce)?,
            t_m: args.f64_or("t-m", d.t_m)?,
            stream: stream.as_ref().map(|s| s.handle()),
        };
        let report = routed_closed_loop_with_parallelism(&cfg, model.as_ref(), host_parallelism())
            .map_err(config_err)?;
        println!("{banner}");
        print_report(&report, engine);
        finish_stream(args, stream)?;
        return Ok(());
    }

    let d = BenchConfig::default();
    if args.get("flows-per-route").is_some() || args.get("noise-sd").is_some() {
        return Err(ArgError(
            "--flows-per-route/--noise-sd require --topology".into(),
        ));
    }
    let stream = open_stream(args)?;
    let cfg = BenchConfig {
        links: args.u64_or("links", d.links as u64)? as usize,
        flows_per_link: args.u64_or("flows-per-link", d.flows_per_link as u64)? as usize,
        ticks: args.u64_or("ticks", d.ticks as u64)? as usize,
        tick: args.f64_or("tick", d.tick)?,
        requests_per_tick: args.u64_or("requests-per-tick", d.requests_per_tick as u64)? as usize,
        mean_holding: args.f64_or("holding", d.mean_holding)?,
        seed: args.u64_or("seed", d.seed)?,
        engine,
        shards: args.u64_or("shards", 1)? as usize,
        producers: args.u64_or("producers", 1)? as usize,
        ring_capacity: args.u64_or("ring-capacity", d.ring_capacity as u64)? as usize,
        capacity: args.f64_or("capacity", d.capacity)?,
        p_ce: args.prob_or("p-ce", d.p_ce)?,
        t_m: args.f64_or("t-m", d.t_m)?,
        stream: stream.as_ref().map(|s| s.handle()),
    };
    let report = closed_loop_with_parallelism(&cfg, model.as_ref(), host_parallelism())
        .map_err(config_err)?;
    println!("serve bench: links = {}", cfg.links);
    print_report(&report, engine);
    finish_stream(args, stream)?;
    Ok(())
}

/// Prints the shape/decisions/timing blocks shared by the per-link and
/// routed benches, keeping the deterministic block separate from the
/// wall-clock one.
fn print_report(report: &BenchReport, engine: Engine) {
    println!(
        "  shards = {}, producers = {}, engine = {engine}, mode = {}",
        report.shards, report.producers, report.mode
    );
    if report.skipped_single_core {
        println!(
            "  note: threaded shape requested on a single-core host \
             (available_parallelism = 1); ran the serial reference instead"
        );
    }
    println!("decisions:");
    println!("  total                : {}", report.decisions);
    println!(
        "  admitted / rejected  : {} / {}",
        report.admitted, report.rejected
    );
    println!("  events replayed      : {}", report.events);
    println!("timing:");
    println!(
        "  p50 / p99 / mean     : {:.0} / {:.0} / {:.0} ns",
        report.p50_ns, report.p99_ns, report.mean_ns
    );
    println!("  decisions per second : {:.3e}", report.decisions_per_sec);
    println!("  elapsed              : {:.4} s", report.elapsed_secs);
}
