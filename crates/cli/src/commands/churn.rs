//! `mbacctl churn` — the flow-lifecycle churn smoke path.
//!
//! Drives the timing-wheel [`mbac_sim::FlowTable`] through a
//! steady-state expire-and-replace loop at `--flows` scale (the
//! lifecycle machinery alone — no process advance), reports per-tick
//! cost and departure throughput, and — with `--verify` — replays the
//! identical workload on the frozen pre-calendar
//! [`mbac_sim::ReferenceFlowTable`] and asserts the two lifecycles
//! bit-identical (snapshots, ids, `next_departure`, conservation
//! counts). CI's `churn-smoke` lane runs exactly this at a reduced
//! population.

use crate::args::{ArgError, Args};
use mbac_sim::{FlowTable, ReferenceFlowTable};
use mbac_traffic::process::SourceModel;
use mbac_traffic::rcbr::{RcbrConfig, RcbrModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Usage text.
pub const USAGE: &str = "\
mbacctl churn [--flows <n>] [--ticks <n>] [--tick <dt>]
              [--holding <T_h>] [--seed <s>] [--engine batched|boxed]
              [--verify true|false]

Runs the steady-state churn lifecycle loop: --flows flows are admitted
with exponential(--holding) departure times, then each tick expires
everything due and admits one replacement per departure, holding the
population constant. Reports ns/tick and departures/tick — the cost of
the timing-wheel departure calendar at scale, with every tick a
departing tick.
--verify true additionally replays the bit-identical workload on the frozen
pre-calendar reference table and asserts snapshots, ids, next-departure
times, and conservation counts equal at the end (exit 1 on divergence).
Defaults: 100000 flows, 200 ticks, tick 0.25, holding 250 (so ~flows/1000
depart per tick), seed 7, batched engine.";

/// One steady-state churn run. Returns (ns/tick, departures).
fn run_loop(
    table: &mut dyn Lifecycle,
    model: &dyn SourceModel,
    flows: usize,
    ticks: usize,
    tick: f64,
    holding: f64,
    seed: u64,
) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    for _ in 0..flows {
        let u: f64 = rng.gen();
        table.admit(model, t - holding * (1.0 - u).ln(), &mut rng);
    }
    let start = Instant::now();
    for _ in 0..ticks {
        t += tick;
        let departed = table.depart_until(t);
        for _ in 0..departed {
            let u: f64 = rng.gen();
            table.admit(model, t - holding * (1.0 - u).ln(), &mut rng);
        }
    }
    let ns_per_tick = start.elapsed().as_nanos() as f64 / ticks as f64;
    (ns_per_tick, table.departed_total())
}

/// The lifecycle surface the loop drives, so the wheel table and the
/// reference table share one driver (and therefore one RNG schedule).
/// Everything else (snapshots, ids, conservation) is read off the
/// concrete tables afterwards.
trait Lifecycle {
    fn admit(&mut self, model: &dyn SourceModel, departs_at: f64, rng: &mut StdRng) -> u64;
    fn depart_until(&mut self, t: f64) -> usize;
    fn departed_total(&self) -> u64;
}

macro_rules! impl_lifecycle {
    ($($t:ty),*) => {$(
        impl Lifecycle for $t {
            fn admit(&mut self, model: &dyn SourceModel, departs_at: f64, rng: &mut StdRng) -> u64 {
                <$t>::admit(self, model, departs_at, rng)
            }
            fn depart_until(&mut self, t: f64) -> usize {
                <$t>::depart_until(self, t)
            }
            fn departed_total(&self) -> u64 {
                <$t>::departed_total(self)
            }
        }
    )*};
}
impl_lifecycle!(FlowTable, ReferenceFlowTable);

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "flows", "ticks", "tick", "holding", "seed", "engine", "verify",
    ])?;
    let flows = args.u64_or("flows", 100_000)? as usize;
    let ticks = args.u64_or("ticks", 200)? as usize;
    let tick = args.f64_or("tick", 0.25)?;
    let holding = args.f64_or("holding", 250.0)?;
    let seed = args.u64_or("seed", 7)?;
    if flows == 0 || ticks == 0 {
        return Err(ArgError("--flows and --ticks must be >= 1".into()));
    }
    if tick <= 0.0 || !tick.is_finite() || holding <= 0.0 || !holding.is_finite() {
        return Err(ArgError("--tick and --holding must be positive".into()));
    }
    let batched = match args.get("engine").unwrap_or("batched") {
        "batched" => true,
        "boxed" => false,
        other => {
            return Err(ArgError(format!(
                "--engine must be batched or boxed, got {other}"
            )))
        }
    };
    let verify = match args.get("verify").unwrap_or("false") {
        "true" => true,
        "false" => false,
        other => {
            return Err(ArgError(format!(
                "--verify must be true or false, got {other}"
            )))
        }
    };
    let model = RcbrModel::new(RcbrConfig::paper_default(1.0));

    let mut wheel = if batched {
        FlowTable::new()
    } else {
        FlowTable::new_unbatched()
    };
    let (ns_per_tick, departed) = run_loop(&mut wheel, &model, flows, ticks, tick, holding, seed);

    println!("churn: {flows} flows, {ticks} ticks, tick = {tick}, holding = {holding}");
    println!(
        "  engine               : {}",
        if batched { "batched" } else { "boxed" }
    );
    println!("  departures           : {departed} ({:.1} per tick)", {
        departed as f64 / ticks as f64
    });
    println!("  lifecycle cost       : {ns_per_tick:.0} ns/tick");
    println!(
        "  in system / admitted : {} / {}",
        wheel.len(),
        wheel.admitted_total()
    );
    if wheel.admitted_total() - wheel.departed_total() != wheel.len() as u64 {
        return Err(ArgError(
            "conservation violated: admitted - departed != in-system".into(),
        ));
    }

    if verify {
        let mut reference = if batched {
            ReferenceFlowTable::new()
        } else {
            ReferenceFlowTable::new_unbatched()
        };
        let (ref_ns, ref_departed) =
            run_loop(&mut reference, &model, flows, ticks, tick, holding, seed);
        let (mut snap_a, mut snap_b) = (Vec::new(), Vec::new());
        wheel.snapshot_into(&mut snap_a);
        reference.snapshot_into(&mut snap_b);
        let diverged = |what: &str| {
            ArgError(format!(
                "wheel and reference lifecycles diverged ({what}) — equivalence bug"
            ))
        };
        if departed != ref_departed {
            return Err(diverged("departure counts"));
        }
        if snap_a != snap_b {
            return Err(diverged("snapshots"));
        }
        if wheel.ids() != reference.ids() {
            return Err(diverged("flow ids"));
        }
        if wheel.next_departure() != reference.next_departure() {
            return Err(diverged("next departure"));
        }
        println!("verify:");
        println!("  reference lifecycle  : {ref_ns:.0} ns/tick ({:.1}x)", {
            ref_ns / ns_per_tick
        });
        println!(
            "  bit-identical        : snapshots, ids, next-departure, {} departures",
            departed
        );
    }
    Ok(())
}
