//! `mbacctl design` — the §5.3 robust design procedure as a calculator.

use crate::args::{ArgError, Args};
use mbac_core::params::{FlowStats, QosTarget};
use mbac_core::robust::{DesignInputs, RobustDesign};
use mbac_core::theory::utilization::mean_utilization;

/// Usage text.
pub const USAGE: &str = "\
mbacctl design --capacity <c> --mean <mu> --sd <sigma> --holding <T_h> --p-q <p>
               [--tc-min <x> --tc-max <y>]

Computes the robust MBAC configuration for a bufferless link:
the memory window T_m = T_h/sqrt(n) and the adjusted certainty-
equivalent target p_ce, worst-cased over correlation time-scales
in [tc-min, tc-max] (default [0.1, 10]).";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "capacity", "mean", "sd", "holding", "p-q", "tc-min", "tc-max",
    ])?;
    let capacity = args.f64_required("capacity")?;
    let mean = args.f64_or("mean", 1.0)?;
    let sd = args.f64_required("sd")?;
    let holding = args.f64_required("holding")?;
    let p_q = args.prob_or("p-q", 1e-3)?;
    let tc_min = args.f64_or("tc-min", 0.1)?;
    let tc_max = args.f64_or("tc-max", 10.0)?;
    if capacity <= 0.0 || mean <= 0.0 || sd < 0.0 || holding <= 0.0 {
        return Err(ArgError(
            "capacity, mean, holding must be positive; sd >= 0".into(),
        ));
    }
    if tc_min <= 0.0 || tc_max < tc_min {
        return Err(ArgError("need 0 < tc-min <= tc-max".into()));
    }

    let flow = FlowStats::from_mean_sd(mean, sd);
    let n = capacity / mean;
    let design = RobustDesign::design(&DesignInputs {
        n,
        flow,
        holding_time: holding,
        qos: QosTarget::new(p_q),
        t_c_range: (tc_min, tc_max),
    });

    println!("robust MBAC design");
    println!("  system size n           : {n:.1} mean-rate flows");
    println!("  critical time-scale T~h : {:.3}", design.t_h_tilde);
    println!(
        "  memory window T_m       : {:.3}  (rule: T_m = T~h)",
        design.t_m
    );
    println!(
        "  adjusted target p_ce    : {:.4e}  (alpha_ce = {:.3})",
        design.p_ce, design.alpha_ce
    );
    println!("  worst-case T_c          : {:.3}", design.worst_t_c);
    println!(
        "  predicted overflow p_f  : {:.3e}  (target {p_q:.1e})",
        design.predicted_pf
    );
    println!(
        "  expected utilization    : {:.2}%  (clairvoyant bound {:.2}%)",
        100.0 * mean_utilization(n, flow, design.alpha_ce),
        100.0 * mean_utilization(n, flow, QosTarget::new(p_q).alpha())
    );
    Ok(())
}
