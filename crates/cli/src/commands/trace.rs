//! `mbacctl trace` — generate and inspect rate traces.

use crate::args::{ArgError, Args};
use mbac_traffic::starwars::{generate_starwars_like, StarwarsConfig};
use mbac_traffic::trace::Trace;
use mbac_traffic::{fit_correlation_timescale, hurst_rs, hurst_variance_time};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Usage text.
pub const USAGE: &str = "\
mbacctl trace gen <file> [--slots <n>] [--mean <mu>] [--cov <sigma/mu>]
                  [--hurst <H>] [--levels <k>] [--slot <dt>] [--seed <s>]
mbacctl trace info <file>

'gen' synthesizes a long-range-dependent piecewise-CBR movie trace
(the Starwars substitute of DESIGN.md §4) into the plain text format;
'info' prints marginal statistics, Hurst estimates (variance-time and
R/S), and a fitted short-range correlation time-scale.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    match args.positional() {
        [action, file] if action == "gen" => gen(args, file),
        [action, file] if action == "info" => info(file),
        _ => Err(ArgError(format!("usage:\n{USAGE}"))),
    }
}

fn gen(args: &Args, file: &str) -> Result<(), ArgError> {
    args.expect_only(&["slots", "mean", "cov", "hurst", "levels", "slot", "seed"])?;
    let cfg = StarwarsConfig {
        mean: args.f64_or("mean", 1.0)?,
        cov: args.f64_or("cov", 0.3)?,
        hurst: args.f64_or("hurst", 0.8)?,
        slots: args.u64_or("slots", 1 << 15)? as usize,
        slot: args.f64_or("slot", 1.0)?,
        levels: args.u64_or("levels", 32)? as usize,
    };
    if !(cfg.hurst > 0.0 && cfg.hurst < 1.0) {
        return Err(ArgError("--hurst must lie in (0,1)".into()));
    }
    let seed = args.u64_or("seed", 0x57A7)?;
    let trace = generate_starwars_like(&cfg, &mut StdRng::seed_from_u64(seed));
    let mut f =
        std::fs::File::create(file).map_err(|e| ArgError(format!("cannot create {file}: {e}")))?;
    trace
        .write_to(&mut f)
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    println!(
        "wrote {file}: {} slots of {} time units, mean {:.4}, peak {:.4}",
        trace.len(),
        trace.slot(),
        trace.mean(),
        trace.peak()
    );
    Ok(())
}

fn info(file: &str) -> Result<(), ArgError> {
    let f = std::fs::File::open(file).map_err(|e| ArgError(format!("cannot open {file}: {e}")))?;
    let trace = Trace::read_from(f).map_err(|e| ArgError(format!("parse failed: {e}")))?;
    println!("{file}:");
    println!(
        "  slots           : {} x {} time units ({} total)",
        trace.len(),
        trace.slot(),
        trace.duration()
    );
    println!("  mean rate       : {:.4}", trace.mean());
    println!(
        "  std dev         : {:.4}  (cov {:.3})",
        trace.variance().sqrt(),
        trace.variance().sqrt() / trace.mean()
    );
    println!("  peak rate       : {:.4}", trace.peak());
    if trace.len() >= 64 {
        println!(
            "  Hurst (var-time): {:.3}",
            hurst_variance_time(trace.rates())
        );
        println!("  Hurst (R/S)     : {:.3}", hurst_rs(trace.rates()));
    }
    match fit_correlation_timescale(trace.rates(), trace.slot(), 50, 0.05) {
        Some(tc) => println!("  fitted T_c      : {tc:.3} (exponential fit to short-lag ACF)"),
        None => println!("  fitted T_c      : (no exponential short-range structure)"),
    }
    Ok(())
}
