//! `mbacctl theory` — evaluate the paper's overflow formulas directly.

use crate::args::{ArgError, Args};
use mbac_core::params::QosTarget;
use mbac_core::theory::continuous::ContinuousModel;
use mbac_core::theory::impulsive;
use mbac_core::theory::invert::{invert_pce, InvertMethod};

/// Usage text.
pub const USAGE: &str = "\
mbacctl theory --cov <sigma/mu> --th-tilde <T~h> --t-c <T_c>
               [--t-m <T_m>] [--p-ce <p>] [--p-q <p>]

Evaluates the continuous-load overflow formulas for one parameter
point: eqn (37) (numeric), eqn (38) (closed form), the memoryless
limit, the impulsive-load sqrt(2) penalty for reference, and — when
--p-q is given — the adjusted p_ce by inversion.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["cov", "th-tilde", "t-c", "t-m", "p-ce", "p-q"])?;
    let cov = args.f64_required("cov")?;
    let th_tilde = args.f64_required("th-tilde")?;
    let t_c = args.f64_required("t-c")?;
    let t_m = args.f64_or("t-m", 0.0)?;
    let p_ce = args.prob_or("p-ce", 1e-3)?;
    if cov <= 0.0 || th_tilde <= 0.0 || t_c <= 0.0 || t_m < 0.0 {
        return Err(ArgError(
            "cov, th-tilde, t-c must be positive; t-m >= 0".into(),
        ));
    }

    let model = ContinuousModel::new(cov, th_tilde, t_c);
    let alpha = QosTarget::new(p_ce).alpha();
    println!("model: sigma/mu = {cov}, T~h = {th_tilde}, T_c = {t_c}");
    println!("  beta (repair drift)      : {:.4}", model.beta());
    println!("  gamma (scale separation) : {:.4}", model.gamma());
    println!("controller: p_ce = {p_ce:.3e} (alpha = {alpha:.3}), T_m = {t_m}");
    println!(
        "  p_f  eqn(37) numeric     : {:.4e}",
        model.pf_with_memory(alpha, t_m)
    );
    println!(
        "  p_f  eqn(38) closed form : {:.4e}",
        model.pf_with_memory_separated(alpha, t_m)
    );
    println!(
        "  p_f  memoryless (T_m=0)  : {:.4e}",
        model.pf_memoryless(alpha)
    );
    println!(
        "  impulsive sqrt2 penalty  : {:.4e}",
        impulsive::pf_certainty_equivalent(p_ce)
    );
    println!(
        "  masking-regime approx    : {:.4e}",
        model.pf_masking_regime(alpha)
    );
    println!(
        "  repair-regime approx     : {:.4e}",
        model.pf_repair_regime(alpha)
    );

    if args.get("p-q").is_some() {
        let p_q = args.prob_or("p-q", 1e-3)?;
        match invert_pce(&model, t_m, p_q, InvertMethod::General) {
            Ok(adj) => println!(
                "inversion: to realize p_f = {p_q:.1e} at T_m = {t_m}, run at p_ce = {:.4e} (ln p_ce = {:.2})",
                adj.p_ce, adj.ln_pce
            ),
            Err(_) => println!(
                "inversion: repair effect already guarantees p_f <= {p_q:.1e} for any target"
            ),
        }
    }
    Ok(())
}
