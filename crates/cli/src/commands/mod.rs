//! Subcommand implementations.

pub mod design;
pub mod serve_bench;
pub mod simulate;
pub mod theory;
pub mod trace;
