//! Subcommand implementations.

pub mod design;
pub mod simulate;
pub mod theory;
pub mod trace;
