//! Subcommand implementations.

pub mod churn;
pub mod design;
pub mod serve_bench;
pub mod simulate;
pub mod theory;
pub mod trace;

use crate::args::{ArgError, Args};
use mbac_core::topology::Topology;
use mbac_metrics::{StreamConfig, StreamSink};

/// Opens the streaming JSONL sink implied by `--metrics-stream` (with
/// `--stream-sample` and `--stream-flush` shaping it), or `None` when
/// the flag is absent.
pub(crate) fn open_stream(args: &Args) -> Result<Option<StreamSink>, ArgError> {
    let Some(path) = args.get("metrics-stream") else {
        return Ok(None);
    };
    let sample_fraction = args.f64_or("stream-sample", 0.0)?;
    if !(0.0..=1.0).contains(&sample_fraction) {
        return Err(ArgError(format!(
            "--stream-sample must be in [0, 1], got {sample_fraction}"
        )));
    }
    let ring_capacity = args.u64_or("stream-ring", StreamConfig::default().ring_capacity as u64)?;
    if ring_capacity == 0 {
        return Err(ArgError("--stream-ring must be >= 1".into()));
    }
    let cfg = StreamConfig {
        sample_fraction,
        flush_interval: args.u64_or("stream-flush", 0)?,
        ring_capacity: ring_capacity as usize,
        ..StreamConfig::default()
    };
    StreamSink::to_path(cfg, std::path::Path::new(path))
        .map(Some)
        .map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// Joins the stream writer and reports its visible backpressure
/// accounting (dropped records are the bounded-memory trade-off; they
/// must be loud, never silent).
pub(crate) fn finish_stream(args: &Args, sink: Option<StreamSink>) -> Result<(), ArgError> {
    let Some(sink) = sink else {
        return Ok(());
    };
    let path = args.get("metrics-stream").unwrap_or("-");
    let stats = sink
        .finish()
        .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    println!(
        "metrics stream: {} samples, {} intervals, {} dropped (ring capacity {})",
        stats.samples, stats.intervals, stats.dropped, stats.ring_capacity
    );
    Ok(())
}

/// Parses a `--topology` spec into a [`Topology`] with every link at
/// `capacity`. Accepted forms: `single`, `parking-lot:<hops>`,
/// `star:<legs>` (parking-lot needs >= 2 hops, star >= 2 legs).
pub(crate) fn parse_topology(spec: &str, capacity: f64) -> Result<Topology, ArgError> {
    let bad = |why: &str| ArgError(format!("--topology '{spec}': {why}"));
    let size = |raw: &str, what: &str| -> Result<usize, ArgError> {
        let n: usize = raw
            .parse()
            .map_err(|_| bad(&format!("{what} must be an integer, got '{raw}'")))?;
        if n < 2 {
            return Err(bad(&format!("{what} must be >= 2")));
        }
        Ok(n)
    };
    match spec.split_once(':') {
        None => match spec {
            "single" => Ok(Topology::single_link(capacity)),
            _ => Err(bad("expected single, parking-lot:<hops>, or star:<legs>")),
        },
        Some(("parking-lot", raw)) => Ok(Topology::parking_lot(size(raw, "hops")?, capacity)),
        Some(("star", raw)) => Ok(Topology::star(size(raw, "legs")?, capacity)),
        Some(_) => Err(bad("expected single, parking-lot:<hops>, or star:<legs>")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_shapes() {
        let t = parse_topology("single", 8.0).unwrap();
        assert_eq!(t.links(), 1);
        assert_eq!(t.routes(), 1);
        let t = parse_topology("parking-lot:3", 10.0).unwrap();
        assert_eq!(t.links(), 3);
        assert_eq!(t.routes(), 4);
        let t = parse_topology("star:4", 10.0).unwrap();
        assert_eq!(t.links(), 5);
        assert_eq!(t.routes(), 4);
    }

    #[test]
    fn rejects_malformed_specs() {
        for spec in [
            "ring",
            "parking-lot",
            "parking-lot:x",
            "parking-lot:1",
            "star:0",
            "mesh:3",
        ] {
            assert!(parse_topology(spec, 8.0).is_err(), "{spec}");
        }
    }
}
