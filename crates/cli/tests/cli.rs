//! End-to-end tests of the `mbacctl` binary.

use std::process::Command;

fn mbacctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mbacctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = mbacctl(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn help_subcommands() {
    for cmd in ["design", "theory", "simulate", "serve-bench", "trace"] {
        let out = mbacctl(&["help", cmd]);
        assert!(out.status.success(), "help {cmd}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("mbacctl"),
            "help {cmd} shows usage"
        );
    }
}

#[test]
fn design_produces_configuration() {
    let out = mbacctl(&[
        "design",
        "--capacity",
        "400",
        "--sd",
        "0.3",
        "--holding",
        "1000",
        "--p-q",
        "0.001",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memory window"));
    assert!(text.contains("adjusted target"));
    // T_m = 1000/sqrt(400) = 50.
    assert!(text.contains("50.000"), "window rule value:\n{text}");
}

#[test]
fn design_rejects_bad_probability() {
    let out = mbacctl(&[
        "design",
        "--capacity",
        "400",
        "--sd",
        "0.3",
        "--holding",
        "1000",
        "--p-q",
        "1.5",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("probability"));
}

#[test]
fn theory_evaluates_formulas() {
    let out = mbacctl(&[
        "theory",
        "--cov",
        "0.3",
        "--th-tilde",
        "31.6",
        "--t-c",
        "1.0",
        "--t-m",
        "8",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("eqn(37)"));
    assert!(text.contains("eqn(38)"));
    assert!(text.contains("gamma"));
}

#[test]
fn unknown_flag_is_reported() {
    let out = mbacctl(&[
        "theory",
        "--cov",
        "0.3",
        "--th-tilde",
        "10",
        "--t-c",
        "1",
        "--oops",
        "1",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --oops"));
}

#[test]
fn trace_gen_info_roundtrip() {
    let dir = std::env::temp_dir().join("mbacctl_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("t.txt");
    let path = file.to_str().unwrap();
    let out = mbacctl(&["trace", "gen", path, "--slots", "2048", "--seed", "9"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = mbacctl(&["trace", "info", path]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Hurst"));
    assert!(text.contains("mean rate"));
    std::fs::remove_file(file).unwrap();
}

#[test]
fn simulate_small_run_reports_result() {
    let out = mbacctl(&[
        "simulate",
        "--capacity",
        "50",
        "--holding",
        "50",
        "--samples",
        "40",
        "--p-q",
        "0.01",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("overflow probability"));
    assert!(text.contains("mean utilization"));
}

#[test]
fn simulate_rejects_missing_capacity() {
    let out = mbacctl(&["simulate", "--holding", "50"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--capacity is required"));
}

/// The small deterministic simulate invocation shared by the metrics
/// and engine tests below.
fn small_sim_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "simulate",
        "--capacity",
        "50",
        "--holding",
        "50",
        "--samples",
        "30",
        "--p-q",
        "0.01",
        "--seed",
        "5",
    ];
    args.extend_from_slice(extra);
    args
}

#[test]
fn simulate_metrics_out_stdout_emits_schema_json() {
    let out = mbacctl(&small_sim_args(&["--metrics-out", "-"]));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Schema shape: versioned header plus the documented metric names.
    assert!(text.contains("\"schema\": \"mbac-metrics/v1\""), "{text}");
    for name in [
        "\"sim.ticks\"",
        "\"sim.admitted\"",
        "\"sim.load\"",
        "\"engine.occupancy\"",
        "\"ctl.admissible\"",
        "\"sim.pf.samples\"",
        "\"sim.pf.overflows\"",
        "\"type\": \"histogram\"",
        "\"type\": \"counter\"",
        "\"type\": \"gauge\"",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    // Timing is opt-in; the default snapshot must be deterministic.
    assert!(!text.contains("engine.tick_ns"));
    // The human-readable report still follows the JSON.
    assert!(text.contains("overflow probability"));
}

#[test]
fn simulate_metrics_out_file_roundtrip_and_engine_equality() {
    let dir = std::env::temp_dir().join("mbacctl_metrics_test");
    std::fs::create_dir_all(&dir).unwrap();
    let batched = dir.join("batched.json");
    let boxed_ = dir.join("boxed.json");
    let out = mbacctl(&small_sim_args(&[
        "--engine",
        "batched",
        "--metrics-out",
        batched.to_str().unwrap(),
    ]));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = mbacctl(&small_sim_args(&[
        "--engine",
        "boxed",
        "--metrics-out",
        boxed_.to_str().unwrap(),
    ]));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a = std::fs::read_to_string(&batched).unwrap();
    let b = std::fs::read_to_string(&boxed_).unwrap();
    assert!(a.contains("\"schema\": \"mbac-metrics/v1\""));
    // Same seed, same config: both engines must emit byte-identical
    // metric snapshots.
    assert_eq!(a, b, "batched and boxed engine metrics diverged");
    std::fs::remove_file(batched).unwrap();
    std::fs::remove_file(boxed_).unwrap();
}

#[test]
fn simulate_rejects_bad_engine() {
    let out = mbacctl(&small_sim_args(&["--engine", "quantum"]));
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--engine must be batched or boxed"));
}

#[test]
fn simulate_rejects_bad_kernel_dispatch() {
    let out = mbacctl(&small_sim_args(&["--kernel-dispatch", "turbo"]));
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--kernel-dispatch must be scalar or wide")
    );
}

#[test]
fn simulate_kernel_dispatch_modes_are_bit_exact_twins() {
    // The scalar and wide kernels are contractually bit-exact, so the
    // full simulation report (including every printed float) must be
    // byte-identical across dispatch modes.
    let scalar = mbacctl(&small_sim_args(&["--kernel-dispatch", "scalar"]));
    let wide = mbacctl(&small_sim_args(&["--kernel-dispatch", "wide"]));
    assert!(
        scalar.status.success(),
        "{}",
        String::from_utf8_lossy(&scalar.stderr)
    );
    assert!(
        wide.status.success(),
        "{}",
        String::from_utf8_lossy(&wide.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&scalar.stdout),
        String::from_utf8_lossy(&wide.stdout),
        "scalar and wide dispatch reports diverged"
    );
}

#[test]
fn simulate_rejects_nonpositive_capacity_without_panicking() {
    let out = mbacctl(&[
        "simulate",
        "--capacity",
        "-5",
        "--holding",
        "50",
        "--samples",
        "10",
    ]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "clean exit, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("capacity must be positive"),
        "friendly message, got: {err}"
    );
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn simulate_impulsive_rejects_too_few_flows_without_panicking() {
    let out = mbacctl(&[
        "simulate",
        "--load",
        "impulsive",
        "--capacity",
        "50",
        "--flows",
        "1",
        "--observe",
        "1.0",
        "--reps",
        "10",
    ]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "clean exit, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("at least 2 estimation flows"),
        "friendly message, got: {err}"
    );
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn simulate_impulsive_rejects_empty_observe_times_without_panicking() {
    let out = mbacctl(&[
        "simulate",
        "--load",
        "impulsive",
        "--capacity",
        "50",
        "--flows",
        "50",
        "--observe",
        "",
        "--reps",
        "10",
    ]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "clean exit, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("observe times must not be empty"),
        "friendly message, got: {err}"
    );
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn simulate_impulsive_small_run_reports_result() {
    let out = mbacctl(&[
        "simulate",
        "--load",
        "impulsive",
        "--capacity",
        "50",
        "--flows",
        "50",
        "--observe",
        "1.0,5.0",
        "--reps",
        "50",
        "--holding",
        "20",
        "--seed",
        "9",
        "--workers",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("M0 admitted"), "{text}");
    assert!(text.contains("p_f ="), "{text}");
}

#[test]
fn simulate_poisson_small_run_reports_result() {
    let out = mbacctl(&[
        "simulate",
        "--load",
        "poisson",
        "--capacity",
        "50",
        "--lambda",
        "0.5",
        "--holding",
        "50",
        "--samples",
        "20",
        "--p-q",
        "0.01",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("blocking probability"), "{text}");
    assert!(text.contains("overflow probability"), "{text}");
}

#[test]
fn simulate_rejects_unknown_load_model() {
    let out = mbacctl(&["simulate", "--capacity", "50", "--load", "bursty"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--load must be continuous, impulsive, poisson or routed"),
        "{err}"
    );
}

#[test]
fn simulate_rejects_trace_with_rcbr_flags() {
    let out = mbacctl(&[
        "simulate",
        "--capacity",
        "50",
        "--holding",
        "50",
        "--trace",
        "whatever.txt",
        "--mean",
        "1.0",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mutually exclusive"), "{err}");
}

/// The small deterministic serve-bench invocation shared by the tests
/// below.
fn small_serve_args<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "serve-bench",
        "--links",
        "3",
        "--flows-per-link",
        "6",
        "--ticks",
        "8",
        "--requests-per-tick",
        "2",
        "--capacity",
        "7",
        "--seed",
        "11",
    ];
    args.extend_from_slice(extra);
    args
}

/// The deterministic half of a serve-bench report: everything printed
/// before the `timing:` block (the decision totals).
fn decision_block(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    text.split("timing:").next().unwrap().to_string()
}

#[test]
fn serve_bench_small_run_reports_decisions_and_timing() {
    let out = mbacctl(&small_serve_args(&[]));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serve bench:"), "{text}");
    // 3 links x 8 ticks x 2 requests = 48 decisions.
    assert!(text.contains("total                : 48"), "{text}");
    assert!(text.contains("admitted / rejected"), "{text}");
    assert!(text.contains("p50 / p99 / mean"), "{text}");
    assert!(text.contains("decisions per second"), "{text}");
}

#[test]
fn serve_bench_unknown_flag_is_reported() {
    let out = mbacctl(&small_serve_args(&["--oops", "1"]));
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --oops"));
}

#[test]
fn serve_bench_rejects_zero_shards_without_panicking() {
    let out = mbacctl(&small_serve_args(&["--shards", "0"]));
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "clean exit, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid configuration"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn serve_bench_rejects_zero_links_without_panicking() {
    let out = mbacctl(&["serve-bench", "--links", "0"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "clean exit, not a panic");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid configuration"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn serve_bench_rejects_bad_kernel_dispatch() {
    let out = mbacctl(&small_serve_args(&["--kernel-dispatch", "turbo"]));
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--kernel-dispatch must be scalar or wide")
    );
}

#[test]
fn serve_bench_rejects_bad_source() {
    let out = mbacctl(&small_serve_args(&["--source", "fractal"]));
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--source must be rcbr or ar1"));
}

#[test]
fn serve_bench_rejects_trace_with_model_flags() {
    let out = mbacctl(&small_serve_args(&[
        "--trace",
        "whatever.txt",
        "--mean",
        "1.0",
    ]));
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn serve_bench_kernel_dispatch_decisions_are_bit_exact_twins() {
    // Decision totals are deterministic; only the timing block may vary
    // between runs, so compare everything above it.
    let scalar = mbacctl(&small_serve_args(&["--kernel-dispatch", "scalar"]));
    let wide = mbacctl(&small_serve_args(&["--kernel-dispatch", "wide"]));
    assert!(
        scalar.status.success(),
        "{}",
        String::from_utf8_lossy(&scalar.stderr)
    );
    assert!(
        wide.status.success(),
        "{}",
        String::from_utf8_lossy(&wide.stderr)
    );
    assert_eq!(
        decision_block(&scalar.stdout),
        decision_block(&wide.stdout),
        "scalar and wide dispatch decision totals diverged"
    );
}

#[test]
fn serve_bench_sharded_decisions_match_default_shape() {
    // Shards/producers are performance knobs: the decision block must
    // not change with the plane shape (on a single-core host the run
    // falls back to serial and says so — the totals still match).
    let base = mbacctl(&small_serve_args(&[]));
    let sharded = mbacctl(&small_serve_args(&["--shards", "4", "--producers", "2"]));
    assert!(base.status.success());
    assert!(
        sharded.status.success(),
        "{}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    let base_block = decision_block(&base.stdout);
    let sharded_block = decision_block(&sharded.stdout);
    // Strip the header/note lines (they name the shape) and compare the
    // decision totals proper.
    let totals = |block: &str| {
        block
            .lines()
            .skip_while(|l| !l.starts_with("decisions:"))
            .map(String::from)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        totals(&base_block),
        totals(&sharded_block),
        "plane shape leaked into the decision totals"
    );
}

#[test]
fn simulate_rejects_unwritable_metrics_out() {
    let out = mbacctl(&small_sim_args(&[
        "--metrics-out",
        "/nonexistent-dir/metrics.json",
    ]));
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot write"));
}

// ---------------------------------------------------------------------
// Routed (multi-hop topology) surfaces
// ---------------------------------------------------------------------

#[test]
fn simulate_routed_reports_per_link_and_per_route() {
    let out = mbacctl(&[
        "simulate",
        "--load",
        "routed",
        "--capacity",
        "10",
        "--holding",
        "8",
        "--topology",
        "parking-lot:2",
        "--ticks",
        "80",
        "--warmup",
        "20",
        "--reps",
        "2",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("routed load: topology = parking-lot:2"),
        "{text}"
    );
    assert!(text.contains("worst-link p_f"), "{text}");
    // parking-lot(2): 2 links, 3 routes (one 2-hop, two 1-hop).
    assert!(text.contains("link 1:"), "{text}");
    assert!(text.contains("route 0 (2 hops)"), "{text}");
    assert!(text.contains("route 2 (1 hop)"), "{text}");
}

#[test]
fn simulate_routed_is_worker_invariant() {
    let run = |workers: &str| {
        let out = mbacctl(&[
            "simulate",
            "--load",
            "routed",
            "--capacity",
            "10",
            "--holding",
            "8",
            "--topology",
            "star:2",
            "--ticks",
            "60",
            "--warmup",
            "15",
            "--reps",
            "3",
            "--seed",
            "7",
            "--workers",
            workers,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(run("1"), run("4"), "worker count leaked into the report");
}

#[test]
fn simulate_routed_rejects_bad_topology() {
    let out = mbacctl(&[
        "simulate",
        "--load",
        "routed",
        "--capacity",
        "10",
        "--holding",
        "8",
        "--topology",
        "mesh:3",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--topology"));
}

#[test]
fn serve_bench_topology_reports_routed_decisions() {
    let out = mbacctl(&[
        "serve-bench",
        "--topology",
        "parking-lot:2",
        "--capacity",
        "14",
        "--flows-per-route",
        "4",
        "--ticks",
        "8",
        "--requests-per-tick",
        "2",
        "--seed",
        "11",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("serve bench (routed): topology = parking-lot:2"),
        "{text}"
    );
    // 3 routes x 8 ticks x 2 requests = 48 decisions.
    assert!(text.contains("total                : 48"), "{text}");
}

#[test]
fn serve_bench_topology_rejects_link_flags() {
    let out = mbacctl(&["serve-bench", "--topology", "star:2", "--links", "3"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn simulate_metrics_stream_writes_v2_jsonl() {
    let dir = std::env::temp_dir().join("mbacctl_stream_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sim_stream.jsonl");
    let out = mbacctl(&small_sim_args(&[
        "--metrics-stream",
        path.to_str().unwrap(),
        "--stream-sample",
        "1.0",
        "--stream-flush",
        "16",
        // Oversized ring: the run outpaces the writer's idle sleep, and
        // this test is about the record shapes, not backpressure.
        "--stream-ring",
        "65536",
    ]));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics stream:"), "{text}");
    assert!(text.contains("0 dropped"), "no drops expected:\n{text}");
    let body = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() >= 3, "header + records + summary:\n{body}");
    assert!(
        lines[0].contains("\"schema\": \"mbac-metrics/v2-stream\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"k\": \"header\""));
    assert!(
        body.contains("\"k\": \"sample\""),
        "sampled at 1.0:\n{body}"
    );
    assert!(body.contains("\"k\": \"interval\""), "{body}");
    let last = lines.last().unwrap();
    assert!(last.contains("\"k\": \"summary\""), "{last}");
    assert!(last.contains("\"dropped\": 0"), "{last}");
}

#[test]
fn simulate_rejects_bad_stream_sample() {
    let out = mbacctl(&small_sim_args(&[
        "--metrics-stream",
        "/tmp/never_written.jsonl",
        "--stream-sample",
        "1.5",
    ]));
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stream-sample"));
}

#[test]
fn serve_bench_metrics_stream_writes_v2_jsonl() {
    let dir = std::env::temp_dir().join("mbacctl_stream_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve_stream.jsonl");
    let out = mbacctl(&[
        "serve-bench",
        "--links",
        "2",
        "--flows-per-link",
        "4",
        "--ticks",
        "8",
        "--requests-per-tick",
        "2",
        "--capacity",
        "8",
        "--seed",
        "3",
        "--metrics-stream",
        path.to_str().unwrap(),
        "--stream-sample",
        "1.0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics stream:"), "{text}");
    assert!(text.contains("0 dropped"), "{text}");
    let body = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert!(
        lines[0].contains("\"schema\": \"mbac-metrics/v2-stream\""),
        "{}",
        lines[0]
    );
    // 2 links x 8 ticks x 2 requests = 32 decisions, all sampled.
    assert_eq!(body.matches("\"k\": \"sample\"").count(), 32, "{body}");
    // The interval snapshots carry plane-namespaced instrument names.
    assert!(body.contains("serve.shard0.requests"), "{body}");
    assert!(lines.last().unwrap().contains("\"k\": \"summary\""));
}
