//! End-to-end tests of the `mbacctl` binary.

use std::process::Command;

fn mbacctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mbacctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = mbacctl(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn help_subcommands() {
    for cmd in ["design", "theory", "simulate", "trace"] {
        let out = mbacctl(&["help", cmd]);
        assert!(out.status.success(), "help {cmd}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("mbacctl"),
            "help {cmd} shows usage"
        );
    }
}

#[test]
fn design_produces_configuration() {
    let out = mbacctl(&[
        "design",
        "--capacity",
        "400",
        "--sd",
        "0.3",
        "--holding",
        "1000",
        "--p-q",
        "0.001",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memory window"));
    assert!(text.contains("adjusted target"));
    // T_m = 1000/sqrt(400) = 50.
    assert!(text.contains("50.000"), "window rule value:\n{text}");
}

#[test]
fn design_rejects_bad_probability() {
    let out = mbacctl(&[
        "design",
        "--capacity",
        "400",
        "--sd",
        "0.3",
        "--holding",
        "1000",
        "--p-q",
        "1.5",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("probability"));
}

#[test]
fn theory_evaluates_formulas() {
    let out = mbacctl(&[
        "theory",
        "--cov",
        "0.3",
        "--th-tilde",
        "31.6",
        "--t-c",
        "1.0",
        "--t-m",
        "8",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("eqn(37)"));
    assert!(text.contains("eqn(38)"));
    assert!(text.contains("gamma"));
}

#[test]
fn unknown_flag_is_reported() {
    let out = mbacctl(&[
        "theory",
        "--cov",
        "0.3",
        "--th-tilde",
        "10",
        "--t-c",
        "1",
        "--oops",
        "1",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --oops"));
}

#[test]
fn trace_gen_info_roundtrip() {
    let dir = std::env::temp_dir().join("mbacctl_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("t.txt");
    let path = file.to_str().unwrap();
    let out = mbacctl(&["trace", "gen", path, "--slots", "2048", "--seed", "9"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = mbacctl(&["trace", "info", path]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Hurst"));
    assert!(text.contains("mean rate"));
    std::fs::remove_file(file).unwrap();
}

#[test]
fn simulate_small_run_reports_result() {
    let out = mbacctl(&[
        "simulate",
        "--capacity",
        "50",
        "--holding",
        "50",
        "--samples",
        "40",
        "--p-q",
        "0.01",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("overflow probability"));
    assert!(text.contains("mean utilization"));
}

#[test]
fn simulate_rejects_missing_capacity() {
    let out = mbacctl(&["simulate", "--holding", "50"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--capacity is required"));
}
