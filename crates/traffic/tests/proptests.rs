//! Property-based tests for the traffic sources.

use mbac_num::{KernelDispatch, RateMoments};
use mbac_traffic::ar1::{Ar1Batch, Ar1Config};
use mbac_traffic::batch::FlowBatch;
use mbac_traffic::fgn::fgn_autocovariance;
use mbac_traffic::marginal::Marginal;
use mbac_traffic::markov::MarkovFluidModel;
use mbac_traffic::process::{RateProcess, SourceModel};
use mbac_traffic::rcbr::{GeneralRcbrModel, RcbrConfig, RcbrModel};
use mbac_traffic::trace::Trace;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// RCBR advancement is associative: advance(a+b) has the same
    /// distribution as advance(a); advance(b) — and with a shared seed,
    /// the *same* renegotiation draws, hence identical rates.
    #[test]
    fn rcbr_advance_composes(
        seed in 0u64..1000,
        a in 0.0f64..5.0,
        b in 0.0f64..5.0,
    ) {
        let cfg = RcbrConfig::paper_default(1.0);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let mut s1 = mbac_traffic::rcbr::RcbrSource::new(cfg, &mut r1);
        let mut s2 = mbac_traffic::rcbr::RcbrSource::new(cfg, &mut r2);
        s1.advance(a + b, &mut r1);
        s2.advance(a, &mut r2);
        s2.advance(b, &mut r2);
        prop_assert_eq!(s1.rate().to_bits(), s2.rate().to_bits());
    }

    /// Every marginal's sample mean/variance constructors are honest.
    #[test]
    fn marginal_constructors_hit_moments(mean in 0.6f64..5.0, cov in 0.05f64..0.45) {
        let sd = mean * cov;
        for m in [
            Marginal::uniform_with_moments(mean, sd),
            Marginal::two_point_with_moments(mean, sd),
            Marginal::lognormal_with_moments(mean, sd),
        ] {
            prop_assert!((m.mean() - mean).abs() < 1e-9 * mean, "{m:?}");
            prop_assert!((m.variance() - sd * sd).abs() < 1e-9 * sd * sd, "{m:?}");
        }
    }

    /// Marginal samples stay inside their support.
    #[test]
    fn marginal_samples_in_support(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = Marginal::Uniform { lo: 0.5, hi: 2.0 };
        let t = Marginal::TwoPoint { low: 0.3, high: 1.9, p_high: 0.4 };
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            prop_assert!((0.5..2.0).contains(&x));
            let y = t.sample(&mut rng);
            prop_assert!((y - 0.3).abs() < 1e-12 || (y - 1.9).abs() < 1e-12);
        }
    }

    /// fGn autocovariance is a valid correlation sequence: γ(0) = 1,
    /// |γ(k)| ≤ 1, and positive/decaying for H > 1/2.
    #[test]
    fn fgn_covariance_sane(h in 0.05f64..0.95, k in 1usize..500) {
        let g = fgn_autocovariance(h, k);
        prop_assert!(g.abs() <= 1.0 + 1e-12, "γ({k}) = {g}");
        if h > 0.5 {
            prop_assert!(g > 0.0);
            prop_assert!(g <= fgn_autocovariance(h, k.max(2) - 1) + 1e-12, "decay at {k}");
        }
    }

    /// On–off fluids: stationary activity and moments follow the rates.
    #[test]
    fn on_off_moments(peak in 0.5f64..10.0, on in 0.1f64..5.0, off in 0.1f64..5.0) {
        let m = MarkovFluidModel::on_off(peak, on, off);
        let p = on / (on + off);
        prop_assert!((m.stationary()[1] - p).abs() < 1e-9);
        let f = mbac_traffic::markov::MarkovFluidFactory::new(m);
        prop_assert!((f.mean() - p * peak).abs() < 1e-9);
        prop_assert!((f.variance() - p * (1.0 - p) * peak * peak).abs() < 1e-9);
    }

    /// Generalized RCBR reports the marginal's analytic moments.
    #[test]
    fn general_rcbr_moments_consistent(mean in 0.6f64..3.0, cov in 0.05f64..0.4, t_c in 0.1f64..10.0) {
        let m = GeneralRcbrModel::new(Marginal::uniform_with_moments(mean, mean * cov), t_c);
        prop_assert!((m.mean() - mean).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(7);
        let src = m.spawn(&mut rng);
        prop_assert_eq!(src.autocorrelation(t_c), Some((-1.0f64).exp()));
    }

    /// Trace playback position always lands in a valid slot.
    #[test]
    fn trace_playback_in_bounds(
        rates in proptest::collection::vec(0.0f64..10.0, 1..50),
        steps in 1usize..200,
        dt in 0.01f64..10.0,
        seed in 0u64..100,
    ) {
        let trace = std::sync::Arc::new(Trace::new(rates.clone(), 1.0));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = mbac_traffic::trace::TraceSource::new(trace, &mut rng);
        for _ in 0..steps {
            src.advance(dt, &mut rng);
            let r = src.rate();
            prop_assert!(rates.contains(&r), "rate {r} not from the trace");
        }
    }

    /// Classic RCBR model moments match config.
    #[test]
    fn rcbr_model_reports_config(mean in 0.5f64..4.0, sd in 0.0f64..1.0, t_c in 0.1f64..10.0) {
        let m = RcbrModel::new(RcbrConfig { mean, std_dev: sd, t_c, truncate_at_zero: false });
        prop_assert_eq!(m.mean(), mean);
        prop_assert!((m.variance() - sd * sd).abs() < 1e-12);
    }

    /// The scalar and wide AR(1) batch kernels are bit-exact twins:
    /// identical rate arrays, identical fused moments, and identical RNG
    /// end state, for arbitrary flow counts (including non-multiples of
    /// the lane width), mid-run spawns that break phase lock, and both
    /// clamp settings. Exercises the whole-array fast path, the
    /// mixed-phase chunk path, and the scalar remainder.
    #[test]
    fn ar1_dispatch_twins_bit_exact(
        seed in 0u64..400,
        n0 in 1usize..30,
        extra in 0usize..12,
        clamp in 0usize..2,
    ) {
        let cfg = Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: clamp == 1,
        };
        let run = |dispatch: KernelDispatch| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut batch = Ar1Batch::with_dispatch(cfg, dispatch);
            for _ in 0..n0 {
                batch.spawn_one(&mut rng);
            }
            let mut mom = RateMoments::new(cfg.mean);
            batch.advance_and_measure(0.25, &mut rng, &mut mom);
            // Move phase off zero, then spawn newcomers at phase zero so
            // the batch leaves the uniform-phase fast path.
            batch.advance_all(0.07, &mut rng);
            for _ in 0..extra {
                batch.spawn_one(&mut rng);
            }
            batch.advance_and_measure(0.25, &mut rng, &mut mom);
            let rate_bits: Vec<u64> = batch.rates().iter().map(|r| r.to_bits()).collect();
            (
                rate_bits,
                mom.sum().to_bits(),
                mom.sum_sq_dev(cfg.mean).to_bits(),
                rng,
            )
        };
        prop_assert_eq!(run(KernelDispatch::Wide), run(KernelDispatch::Scalar));
    }
}
