//! Discrete-time AR(1) Gaussian source — a sampled Ornstein–Uhlenbeck
//! process.
//!
//! Unlike the RCBR source (piecewise constant between renegotiations),
//! this source changes continuously-in-distribution on a fixed tick
//! `Δ`: `X_{k+1} = μ + a (X_k − μ) + ε_k` with `a = e^{−Δ/T_c}` and
//! `ε_k ~ N(0, σ²(1−a²))`, which keeps the stationary marginal exactly
//! `N(μ, σ²)` and the autocorrelation exactly `e^{−|τ|/T_c}` on the
//! tick grid. Used to confirm that the theory's predictions do not hinge
//! on the RCBR jump structure — only on the second-order statistics.

use crate::batch::{BatchKey, FlowBatch};
use crate::process::{RateProcess, SourceModel};
use mbac_num::rng::{normal, standard_normal};
use rand::rngs::StdRng;
use rand::RngCore;

/// Configuration of an AR(1) source.
#[derive(Debug, Clone, Copy)]
pub struct Ar1Config {
    /// Stationary mean `μ`.
    pub mean: f64,
    /// Stationary standard deviation `σ`.
    pub std_dev: f64,
    /// Correlation time-scale `T_c`.
    pub t_c: f64,
    /// Update tick `Δ` (should be ≪ `T_c` to approximate continuous
    /// motion).
    pub tick: f64,
    /// Clamp rates at zero.
    pub clamp_at_zero: bool,
}

/// Factory for AR(1) flows.
#[derive(Debug, Clone, Copy)]
pub struct Ar1Model {
    cfg: Ar1Config,
}

impl Ar1Model {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics on non-positive mean, `T_c` or tick, or negative σ.
    pub fn new(cfg: Ar1Config) -> Self {
        assert!(cfg.mean > 0.0 && cfg.mean.is_finite());
        assert!(cfg.std_dev >= 0.0 && cfg.std_dev.is_finite());
        assert!(cfg.t_c > 0.0 && cfg.t_c.is_finite());
        assert!(cfg.tick > 0.0 && cfg.tick.is_finite());
        Ar1Model { cfg }
    }
}

impl SourceModel for Ar1Model {
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess> {
        let mut s = Ar1Source {
            cfg: self.cfg,
            value: 0.0,
            elapsed: 0.0,
        };
        s.reset(rng);
        Box::new(s)
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.std_dev * self.cfg.std_dev
    }

    fn batch_key(&self) -> Option<BatchKey> {
        Some(BatchKey::Ar1 {
            mean: self.cfg.mean,
            std_dev: self.cfg.std_dev,
            t_c: self.cfg.t_c,
            tick: self.cfg.tick,
            clamp_at_zero: self.cfg.clamp_at_zero,
        })
    }

    fn new_batch(&self) -> Option<Box<dyn FlowBatch>> {
        Some(Box::new(Ar1Batch::new(self.cfg)))
    }
}

/// Struct-of-arrays batch of AR(1) flows. The tick coefficient
/// `a = e^{−Δ/T_c}` and the innovation σ are hoisted out of the per-flow
/// loop (the boxed source recomputes both on every step), and the rate
/// cache is refreshed in the same pass as the advance.
pub struct Ar1Batch {
    cfg: Ar1Config,
    /// Hoisted `e^{−Δ/T_c}`.
    a: f64,
    /// Hoisted `σ √(1−a²)`.
    innovation_sd: f64,
    /// Untruncated AR(1) state per flow.
    values: Vec<f64>,
    /// Time since the last tick boundary per flow.
    elapsed: Vec<f64>,
    /// Cached (clamped) rates per flow.
    rates: Vec<f64>,
}

impl Ar1Batch {
    /// Creates an empty batch for flows of the given configuration.
    pub fn new(cfg: Ar1Config) -> Self {
        let a = (-cfg.tick / cfg.t_c).exp();
        let innovation_sd = cfg.std_dev * (1.0 - a * a).sqrt();
        Ar1Batch {
            cfg,
            a,
            innovation_sd,
            values: Vec::new(),
            elapsed: Vec::new(),
            rates: Vec::new(),
        }
    }

    fn clamp(&self, value: f64) -> f64 {
        if self.cfg.clamp_at_zero {
            value.max(0.0)
        } else {
            value
        }
    }
}

impl FlowBatch for Ar1Batch {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn advance_all(&mut self, dt: f64, rng: &mut StdRng) {
        assert!(dt >= 0.0);
        let (mean, tick, clamp) = (self.cfg.mean, self.cfg.tick, self.cfg.clamp_at_zero);
        let (a, sd) = (self.a, self.innovation_sd);
        // Lock-step slice iteration: no bounds checks in the hot loop.
        for ((value, elapsed), rate) in self
            .values
            .iter_mut()
            .zip(self.elapsed.iter_mut())
            .zip(self.rates.iter_mut())
        {
            let mut v = *value;
            let mut e = *elapsed + dt;
            while e >= tick {
                e -= tick;
                v = mean + a * (v - mean) + sd * standard_normal(rng);
            }
            *value = v;
            *elapsed = e;
            *rate = if clamp { v.max(0.0) } else { v };
        }
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn spawn_one(&mut self, rng: &mut StdRng) {
        // Same draw as `Ar1Source::reset`.
        let value = normal(rng, self.cfg.mean, self.cfg.std_dev);
        self.values.push(value);
        self.elapsed.push(0.0);
        self.rates.push(self.clamp(value));
    }

    fn swap_remove(&mut self, i: usize) {
        self.values.swap_remove(i);
        self.elapsed.swap_remove(i);
        self.rates.swap_remove(i);
    }
}

/// One AR(1) flow.
#[derive(Debug, Clone)]
pub struct Ar1Source {
    cfg: Ar1Config,
    /// Untruncated AR(1) state.
    value: f64,
    /// Time accumulated since the last tick boundary.
    elapsed: f64,
}

impl Ar1Source {
    /// Creates a flow in its stationary distribution.
    pub fn new(cfg: Ar1Config, rng: &mut dyn RngCore) -> Self {
        let mut s = Ar1Source {
            cfg,
            value: 0.0,
            elapsed: 0.0,
        };
        s.reset(rng);
        s
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let a = (-self.cfg.tick / self.cfg.t_c).exp();
        let innovation_sd = self.cfg.std_dev * (1.0 - a * a).sqrt();
        self.value =
            self.cfg.mean + a * (self.value - self.cfg.mean) + innovation_sd * standard_normal(rng);
    }
}

impl RateProcess for Ar1Source {
    fn rate(&self) -> f64 {
        if self.cfg.clamp_at_zero {
            self.value.max(0.0)
        } else {
            self.value
        }
    }

    fn advance(&mut self, dt: f64, rng: &mut dyn RngCore) {
        assert!(dt >= 0.0);
        self.elapsed += dt;
        while self.elapsed >= self.cfg.tick {
            self.elapsed -= self.cfg.tick;
            self.step(rng);
        }
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.value = normal(rng, self.cfg.mean, self.cfg.std_dev);
        self.elapsed = 0.0;
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.std_dev * self.cfg.std_dev
    }

    fn autocorrelation(&self, tau: f64) -> Option<f64> {
        Some((-tau.abs() / self.cfg.t_c).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::test_util::{check_acf, check_moments};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> Ar1Config {
        Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: false,
        }
    }

    #[test]
    fn stationary_moments() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = Ar1Source::new(cfg(), &mut rng);
        check_moments(&mut s, 0.25, 200_000, 0.01, 0.01, 22);
    }

    #[test]
    fn exponential_autocorrelation() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut s = Ar1Source::new(cfg(), &mut rng);
        check_acf(&mut s, 0.5, 300_000, &[1, 2, 4], 0.02, 24);
    }

    #[test]
    fn sub_tick_advance_does_not_move() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut s = Ar1Source::new(cfg(), &mut rng);
        let r = s.rate();
        s.advance(0.01, &mut rng); // below the 0.05 tick
        assert_eq!(s.rate(), r);
        s.advance(0.05, &mut rng); // crosses the boundary
        assert_ne!(s.rate(), r);
    }

    #[test]
    fn clamping_keeps_rates_physical() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut s = Ar1Source::new(
            Ar1Config {
                mean: 0.3,
                std_dev: 0.4,
                t_c: 0.5,
                tick: 0.05,
                clamp_at_zero: true,
            },
            &mut rng,
        );
        for _ in 0..50_000 {
            s.advance(0.05, &mut rng);
            assert!(s.rate() >= 0.0);
        }
    }

    #[test]
    fn matches_rcbr_second_order_statistics() {
        // Same (μ, σ, T_c) as the RCBR source: identical analytic ACF.
        let ar1 = Ar1Model::new(cfg());
        let mut rng = StdRng::seed_from_u64(27);
        let a = ar1.spawn(&mut rng);
        assert_eq!(a.autocorrelation(0.7), Some((-0.7f64).exp()));
        assert!((a.mean() - 1.0).abs() < 1e-12);
        assert!((a.variance() - 0.09).abs() < 1e-12);
    }
}
