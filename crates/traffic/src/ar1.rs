//! Discrete-time AR(1) Gaussian source — a sampled Ornstein–Uhlenbeck
//! process.
//!
//! Unlike the RCBR source (piecewise constant between renegotiations),
//! this source changes continuously-in-distribution on a fixed tick
//! `Δ`: `X_{k+1} = μ + a (X_k − μ) + ε_k` with `a = e^{−Δ/T_c}` and
//! `ε_k ~ N(0, σ²(1−a²))`, which keeps the stationary marginal exactly
//! `N(μ, σ²)` and the autocorrelation exactly `e^{−|τ|/T_c}` on the
//! tick grid. Used to confirm that the theory's predictions do not hinge
//! on the RCBR jump structure — only on the second-order statistics.

use crate::batch::{BatchKey, FlowBatch};
use crate::process::{RateProcess, SourceModel};
use mbac_num::rng::{normal, standard_normal, NormalSampler};
use mbac_num::{KernelDispatch, RateMoments};
use rand::rngs::StdRng;
use rand::RngCore;

/// Configuration of an AR(1) source.
#[derive(Debug, Clone, Copy)]
pub struct Ar1Config {
    /// Stationary mean `μ`.
    pub mean: f64,
    /// Stationary standard deviation `σ`.
    pub std_dev: f64,
    /// Correlation time-scale `T_c`.
    pub t_c: f64,
    /// Update tick `Δ` (should be ≪ `T_c` to approximate continuous
    /// motion).
    pub tick: f64,
    /// Clamp rates at zero.
    pub clamp_at_zero: bool,
}

/// Factory for AR(1) flows.
#[derive(Debug, Clone, Copy)]
pub struct Ar1Model {
    cfg: Ar1Config,
}

impl Ar1Model {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics on non-positive mean, `T_c` or tick, or negative σ.
    pub fn new(cfg: Ar1Config) -> Self {
        assert!(cfg.mean > 0.0 && cfg.mean.is_finite());
        assert!(cfg.std_dev >= 0.0 && cfg.std_dev.is_finite());
        assert!(cfg.t_c > 0.0 && cfg.t_c.is_finite());
        assert!(cfg.tick > 0.0 && cfg.tick.is_finite());
        Ar1Model { cfg }
    }
}

impl SourceModel for Ar1Model {
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess> {
        let mut s = Ar1Source {
            cfg: self.cfg,
            value: 0.0,
            elapsed: 0.0,
        };
        s.reset(rng);
        Box::new(s)
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.std_dev * self.cfg.std_dev
    }

    fn batch_key(&self) -> Option<BatchKey> {
        Some(BatchKey::Ar1 {
            mean: self.cfg.mean,
            std_dev: self.cfg.std_dev,
            t_c: self.cfg.t_c,
            tick: self.cfg.tick,
            clamp_at_zero: self.cfg.clamp_at_zero,
        })
    }

    fn new_batch(&self) -> Option<Box<dyn FlowBatch>> {
        Some(Box::new(Ar1Batch::new(self.cfg)))
    }
}

/// Lane width of the chunked AR(1) kernel. Eight f64 lanes fill two
/// AVX2 (or one AVX-512) vector registers and keep the innovation
/// scratch a cache-resident strip.
const LANES: usize = 8;

/// Chunks needing more steps than this per tick take the scalar path,
/// bounding the innovation scratch. Simulation dt/tick ratios are single
/// digits, so the fused path covers every realistic configuration.
const MAX_FUSED_STEPS: usize = 64;

/// Upper bound on the whole-array innovation scratch (in f64s, 256 KiB).
/// Larger advances fall back to the per-chunk kernel, whose scratch is
/// bounded by `MAX_FUSED_STEPS * LANES`.
const MAX_ARRAY_SCRATCH: usize = 1 << 15;

/// Struct-of-arrays batch of AR(1) flows. The tick coefficient
/// `a = e^{−Δ/T_c}` and the innovation σ are hoisted out of the per-flow
/// loop (the boxed source recomputes both on every step), and the rate
/// cache is refreshed in the same pass as the advance.
///
/// The advance runs a chunked two-phase kernel: flows are processed
/// `LANES` at a time, the innovations for a chunk are drawn first (in
/// exact flow order, preserving the RNG-stream contract) into a strided
/// scratch strip, and the state recurrence then runs lane-parallel over
/// the chunk — a branch-free inner loop the autovectorizer can lift to
/// SIMD. Per-flow arithmetic is expression-for-expression identical to
/// the scalar recurrence, so rates stay bit-identical to the boxed
/// engine.
pub struct Ar1Batch {
    cfg: Ar1Config,
    /// Hoisted `e^{−Δ/T_c}`.
    a: f64,
    /// Hoisted `σ √(1−a²)`.
    innovation_sd: f64,
    /// Untruncated AR(1) state per flow.
    values: Vec<f64>,
    /// Time since the last tick boundary per flow.
    elapsed: Vec<f64>,
    /// Cached (clamped) rates per flow.
    rates: Vec<f64>,
    /// Reusable innovation strip for the chunked kernel: lane `j`'s
    /// draws for one advance occupy `scratch[j*k .. (j+1)*k]` (flat
    /// flow-major draw order).
    scratch: Vec<f64>,
    /// When `Some(bits)`, every flow's `elapsed` is known to hold the
    /// f64 with those bits, so the whole-array fast path can skip its
    /// uniformity scan. `None` means unknown (the scan re-establishes
    /// it). Maintained conservatively: spawns that break phase lock and
    /// the mixed-phase fallback path clear it.
    elapsed_uniform: Option<u64>,
    /// Pinned kernel dispatch for this batch; `None` follows the
    /// process-wide [`KernelDispatch::current`]. Tests and ablations pin
    /// a mode with [`Ar1Batch::with_dispatch`].
    dispatch: Option<KernelDispatch>,
}

/// One flow's scalar update — the reference recurrence every fused path
/// must reproduce bit-for-bit. Also used directly for chunk remainders
/// and for chunks whose lanes cross different numbers of tick
/// boundaries.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn scalar_step(
    mean: f64,
    tick: f64,
    a: f64,
    sd: f64,
    clamp: bool,
    dt: f64,
    sampler: &NormalSampler,
    value: &mut f64,
    elapsed: &mut f64,
    rate: &mut f64,
    rng: &mut StdRng,
) {
    let mut v = *value;
    let mut e = *elapsed + dt;
    while e >= tick {
        e -= tick;
        v = mean + a * (v - mean) + sd * sampler.sample(rng);
    }
    *value = v;
    *elapsed = e;
    *rate = if clamp { v.max(0.0) } else { v };
}

/// Phase B of the fused kernel for one [`LANES`]-wide chunk: the
/// lane-parallel recurrence over `k0` steps, lane `j` reading its
/// innovation stream at `scratch[j * k0 + step]` (flat draw order).
/// Per lane this is the identical expression sequence as
/// [`scalar_step`], so the states are bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn chunk_recurrence(
    mean: f64,
    a: f64,
    sd: f64,
    clamp: bool,
    k0: usize,
    scratch: &[f64],
    values: &mut [f64],
    rates: &mut [f64],
) {
    // Lane-outer, step-inner: each lane walks its contiguous innovation
    // run with an iterator (no bounds checks), and the eight
    // independent short dependency chains sit adjacent in program order
    // for the out-of-order core to overlap.
    for (j, lane) in scratch[..k0 * LANES].chunks_exact(k0).enumerate() {
        let mut vj = values[j];
        for &eps in lane {
            vj = mean + a * (vj - mean) + sd * eps;
        }
        values[j] = vj;
        rates[j] = if clamp { vj.max(0.0) } else { vj };
    }
}

/// The wide-lane twin of [`chunk_recurrence`]: step-outer over the
/// chunk, all [`LANES`] flows advanced together per tick boundary. The
/// per-step inner loops are straight-line over `[f64; LANES]` tiles, so
/// the autovectorizer packs the whole recurrence step into vector
/// registers; the flow-major scratch is gathered into a step tile as it
/// goes (the gather is integer-addressed loads that overlap the FP
/// chain). Per lane the expression sequence — `v = mean + a·(v−mean) +
/// sd·ε`, then a final `max(0, ·)` — is identical to [`scalar_step`],
/// and lanes never mix, so states and rates are bit-exact with the
/// scalar twin.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn chunk_recurrence_wide(
    mean: f64,
    a: f64,
    sd: f64,
    clamp: bool,
    k0: usize,
    scratch: &[f64],
    values: &mut [f64],
    rates: &mut [f64],
) {
    let scratch = &scratch[..k0 * LANES];
    let mut v = [0.0f64; LANES];
    v.copy_from_slice(&values[..LANES]);
    for s in 0..k0 {
        let mut eps = [0.0f64; LANES];
        for (j, e) in eps.iter_mut().enumerate() {
            *e = scratch[j * k0 + s];
        }
        for j in 0..LANES {
            v[j] = mean + a * (v[j] - mean) + sd * eps[j];
        }
    }
    for j in 0..LANES {
        values[j] = v[j];
        rates[j] = if clamp { v[j].max(0.0) } else { v[j] };
    }
}

impl Ar1Batch {
    /// Creates an empty batch for flows of the given configuration,
    /// following the process-wide [`KernelDispatch`].
    pub fn new(cfg: Ar1Config) -> Self {
        let a = (-cfg.tick / cfg.t_c).exp();
        let innovation_sd = cfg.std_dev * (1.0 - a * a).sqrt();
        Ar1Batch {
            cfg,
            a,
            innovation_sd,
            values: Vec::new(),
            elapsed: Vec::new(),
            rates: Vec::new(),
            scratch: Vec::new(),
            elapsed_uniform: Some(0.0f64.to_bits()),
            dispatch: None,
        }
    }

    /// As [`Ar1Batch::new`] with the kernel dispatch pinned, regardless
    /// of the process-wide mode. Both modes are bit-exact twins; pinning
    /// exists for twin tests and the bench ablation.
    pub fn with_dispatch(cfg: Ar1Config, dispatch: KernelDispatch) -> Self {
        let mut b = Self::new(cfg);
        b.dispatch = Some(dispatch);
        b
    }

    fn clamp(&self, value: f64) -> f64 {
        if self.cfg.clamp_at_zero {
            value.max(0.0)
        } else {
            value
        }
    }

    /// The shared advance(+measure) kernel. `MEASURE` folds each
    /// refreshed rate into `mom` in flow order within the same pass;
    /// when `false` the accumulation compiles out and `mom` is untouched.
    #[inline(always)]
    fn kernel<const MEASURE: bool>(&mut self, dt: f64, rng: &mut StdRng, mom: &mut RateMoments) {
        assert!(dt >= 0.0);
        let (mean, tick, clamp) = (self.cfg.mean, self.cfg.tick, self.cfg.clamp_at_zero);
        let (a, sd) = (self.a, self.innovation_sd);
        let disp = self.dispatch.unwrap_or_else(KernelDispatch::current);
        let wide = disp == KernelDispatch::Wide;
        let sampler = NormalSampler::get();
        let n = self.values.len();
        let values = &mut self.values[..];
        let elapsed = &mut self.elapsed[..];
        let rates = &mut self.rates[..];
        let scratch = &mut self.scratch;

        // Whole-array fast path: flows advanced in lock-step share one
        // elapsed phase forever (spawns start at phase zero and the
        // common case of an observation interval that is a multiple of
        // the tick returns everyone to phase zero together), so one
        // replay usually covers every flow and the innovations for the
        // whole array can be drawn in a single flat fill — flow-major,
        // exactly the boxed engine's draw order — before one tight
        // lane-parallel sweep.
        let nfull = n - n % LANES;
        let uniform_in = match self.elapsed_uniform {
            Some(b) => {
                debug_assert!(n == 0 || elapsed[0].to_bits() == b);
                true
            }
            // Re-establish the invariant by scanning (bit equality, so
            // the replay below is exact for every flow).
            None => {
                nfull > 0
                    && elapsed[1..n]
                        .iter()
                        .all(|&ej| ej.to_bits() == elapsed[0].to_bits())
            }
        };
        if nfull > 0 && uniform_in {
            let mut ej = elapsed[0] + dt;
            let mut k0 = 0usize;
            while ej >= tick {
                ej -= tick;
                k0 += 1;
            }
            if k0 == 0 {
                // No boundary crossed anywhere: states and rates are
                // already current; only the fractional phase moves.
                for x in elapsed.iter_mut() {
                    *x = ej;
                }
                self.elapsed_uniform = Some(ej.to_bits());
                if MEASURE {
                    for &r in rates.iter() {
                        mom.add(r);
                    }
                }
                return;
            }
            if k0 <= MAX_FUSED_STEPS && k0 * nfull <= MAX_ARRAY_SCRATCH {
                scratch.resize(k0 * nfull, 0.0);
                // Software-pipelined: fill chunk c+1's innovations, then
                // run chunk c's recurrence — the FP recurrence overlaps
                // the next chunk's integer-heavy draw run in the
                // out-of-order window. Fills still execute in order, so
                // the draw stream is untouched.
                let w = k0 * LANES;
                sampler.fill_with(disp, rng, &mut scratch[..w]);
                let mut c = 0;
                while c < nfull {
                    let base = c * k0;
                    if c + LANES < nfull {
                        sampler.fill_with(disp, rng, &mut scratch[base + w..base + 2 * w]);
                    }
                    let recur = if wide {
                        chunk_recurrence_wide
                    } else {
                        chunk_recurrence
                    };
                    recur(
                        mean,
                        a,
                        sd,
                        clamp,
                        k0,
                        &scratch[base..base + w],
                        &mut values[c..c + LANES],
                        &mut rates[c..c + LANES],
                    );
                    if MEASURE {
                        if wide {
                            let tile: &[f64; LANES] = (&rates[c..c + LANES]).try_into().unwrap();
                            mom.add_lanes(tile);
                        } else {
                            for j in 0..LANES {
                                mom.add(rates[c + j]);
                            }
                        }
                    }
                    c += LANES;
                }
                for x in elapsed[..nfull].iter_mut() {
                    *x = ej;
                }
                // Remainder flows: scalar, continuing the same stream.
                // Their elapsed replay starts from the same phase, so
                // they land on the same `ej` and uniformity holds.
                for i in nfull..n {
                    scalar_step(
                        mean,
                        tick,
                        a,
                        sd,
                        clamp,
                        dt,
                        &sampler,
                        &mut values[i],
                        &mut elapsed[i],
                        &mut rates[i],
                        rng,
                    );
                    if MEASURE {
                        mom.add(rates[i]);
                    }
                }
                self.elapsed_uniform = Some(ej.to_bits());
                return;
            }
        }
        // Mixed phases (or an advance too large for the whole-array
        // scratch): conservative — re-scan next time.
        self.elapsed_uniform = None;

        let mut i = 0;
        while i + LANES <= n {
            // Pre-pass: replay each lane's elapsed-time subtraction
            // exactly (it draws nothing, so it commutes with the RNG) to
            // learn the step counts and final fractional elapsed times.
            // Flows spawned together stay phase-locked forever, so the
            // whole chunk usually shares one elapsed value and one
            // replay covers it.
            let mut e = [0.0f64; LANES];
            let mut k = [0usize; LANES];
            let e0 = elapsed[i];
            if elapsed[i + 1..i + LANES].iter().all(|&ej| ej == e0) {
                let mut ej = e0 + dt;
                let mut kj = 0usize;
                while ej >= tick {
                    ej -= tick;
                    kj += 1;
                }
                e = [ej; LANES];
                k = [kj; LANES];
            } else {
                for j in 0..LANES {
                    let mut ej = elapsed[i + j] + dt;
                    let mut kj = 0usize;
                    while ej >= tick {
                        ej -= tick;
                        kj += 1;
                    }
                    e[j] = ej;
                    k[j] = kj;
                }
            }
            let k0 = k[0];
            if k.iter().all(|&kj| kj == k0) && k0 <= MAX_FUSED_STEPS {
                if k0 > 0 {
                    // Phase A: draw the chunk's innovations in exact
                    // flow order (lane 0's k0 draws first, then lane
                    // 1's, …) into flat draw-ordered scratch — lane j's
                    // innovations occupy scratch[j*k0..(j+1)*k0].
                    // Draws go LANES at a time through the speculative
                    // batch sampler — one branchless run of LANES words
                    // plus one contiguous block store in the common
                    // all-interior case — falling back to scalar draws
                    // (same stream) when a wedge or tail draw occurs.
                    scratch.resize(k0 * LANES, 0.0);
                    sampler.fill_with(disp, rng, &mut scratch[..k0 * LANES]);
                    // Phase B: lane-parallel recurrence over the chunk.
                    let recur = if wide {
                        chunk_recurrence_wide
                    } else {
                        chunk_recurrence
                    };
                    recur(
                        mean,
                        a,
                        sd,
                        clamp,
                        k0,
                        &scratch[..k0 * LANES],
                        &mut values[i..i + LANES],
                        &mut rates[i..i + LANES],
                    );
                }
                // k0 == 0: no boundary crossed, states and rates are
                // already current. Either way the fractional elapsed
                // times move forward.
                elapsed[i..i + LANES].copy_from_slice(&e);
            } else {
                // Lanes cross different numbers of boundaries (or a
                // huge dt): per-flow scalar path, same draw order.
                for j in 0..LANES {
                    scalar_step(
                        mean,
                        tick,
                        a,
                        sd,
                        clamp,
                        dt,
                        &sampler,
                        &mut values[i + j],
                        &mut elapsed[i + j],
                        &mut rates[i + j],
                        rng,
                    );
                }
            }
            if MEASURE {
                if wide {
                    let tile: &[f64; LANES] = (&rates[i..i + LANES]).try_into().unwrap();
                    mom.add_lanes(tile);
                } else {
                    for j in 0..LANES {
                        mom.add(rates[i + j]);
                    }
                }
            }
            i += LANES;
        }
        while i < n {
            scalar_step(
                mean,
                tick,
                a,
                sd,
                clamp,
                dt,
                &sampler,
                &mut values[i],
                &mut elapsed[i],
                &mut rates[i],
                rng,
            );
            if MEASURE {
                mom.add(rates[i]);
            }
            i += 1;
        }
    }
}

impl FlowBatch for Ar1Batch {
    fn len(&self) -> usize {
        self.values.len()
    }

    fn advance_all(&mut self, dt: f64, rng: &mut StdRng) {
        let mut unused = RateMoments::new(0.0);
        self.kernel::<false>(dt, rng, &mut unused);
    }

    fn advance_and_measure(&mut self, dt: f64, rng: &mut StdRng, mom: &mut RateMoments) {
        self.kernel::<true>(dt, rng, mom);
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn spawn_one(&mut self, rng: &mut StdRng) {
        // Same draw as `Ar1Source::reset`.
        let value = normal(rng, self.cfg.mean, self.cfg.std_dev);
        // The newcomer starts at phase zero: the batch stays uniform
        // only if the incumbents also sit at phase zero (e.g. arrivals
        // on a tick-multiple grid).
        let zero = 0.0f64.to_bits();
        self.elapsed_uniform = if self.values.is_empty() || self.elapsed_uniform == Some(zero) {
            Some(zero)
        } else {
            None
        };
        self.values.push(value);
        self.elapsed.push(0.0);
        self.rates.push(self.clamp(value));
    }

    fn swap_remove(&mut self, i: usize) {
        self.values.swap_remove(i);
        self.elapsed.swap_remove(i);
        self.rates.swap_remove(i);
    }
}

/// One AR(1) flow.
#[derive(Debug, Clone)]
pub struct Ar1Source {
    cfg: Ar1Config,
    /// Untruncated AR(1) state.
    value: f64,
    /// Time accumulated since the last tick boundary.
    elapsed: f64,
}

impl Ar1Source {
    /// Creates a flow in its stationary distribution.
    pub fn new(cfg: Ar1Config, rng: &mut dyn RngCore) -> Self {
        let mut s = Ar1Source {
            cfg,
            value: 0.0,
            elapsed: 0.0,
        };
        s.reset(rng);
        s
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let a = (-self.cfg.tick / self.cfg.t_c).exp();
        let innovation_sd = self.cfg.std_dev * (1.0 - a * a).sqrt();
        self.value =
            self.cfg.mean + a * (self.value - self.cfg.mean) + innovation_sd * standard_normal(rng);
    }
}

impl RateProcess for Ar1Source {
    fn rate(&self) -> f64 {
        if self.cfg.clamp_at_zero {
            self.value.max(0.0)
        } else {
            self.value
        }
    }

    fn advance(&mut self, dt: f64, rng: &mut dyn RngCore) {
        assert!(dt >= 0.0);
        self.elapsed += dt;
        while self.elapsed >= self.cfg.tick {
            self.elapsed -= self.cfg.tick;
            self.step(rng);
        }
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.value = normal(rng, self.cfg.mean, self.cfg.std_dev);
        self.elapsed = 0.0;
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.std_dev * self.cfg.std_dev
    }

    fn autocorrelation(&self, tau: f64) -> Option<f64> {
        Some((-tau.abs() / self.cfg.t_c).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::test_util::{check_acf, check_moments};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> Ar1Config {
        Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: false,
        }
    }

    #[test]
    fn stationary_moments() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut s = Ar1Source::new(cfg(), &mut rng);
        check_moments(&mut s, 0.25, 200_000, 0.01, 0.01, 22);
    }

    #[test]
    fn exponential_autocorrelation() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut s = Ar1Source::new(cfg(), &mut rng);
        check_acf(&mut s, 0.5, 300_000, &[1, 2, 4], 0.02, 24);
    }

    #[test]
    fn sub_tick_advance_does_not_move() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut s = Ar1Source::new(cfg(), &mut rng);
        let r = s.rate();
        s.advance(0.01, &mut rng); // below the 0.05 tick
        assert_eq!(s.rate(), r);
        s.advance(0.05, &mut rng); // crosses the boundary
        assert_ne!(s.rate(), r);
    }

    #[test]
    fn clamping_keeps_rates_physical() {
        let mut rng = StdRng::seed_from_u64(26);
        let mut s = Ar1Source::new(
            Ar1Config {
                mean: 0.3,
                std_dev: 0.4,
                t_c: 0.5,
                tick: 0.05,
                clamp_at_zero: true,
            },
            &mut rng,
        );
        for _ in 0..50_000 {
            s.advance(0.05, &mut rng);
            assert!(s.rate() >= 0.0);
        }
    }

    #[test]
    fn matches_rcbr_second_order_statistics() {
        // Same (μ, σ, T_c) as the RCBR source: identical analytic ACF.
        let ar1 = Ar1Model::new(cfg());
        let mut rng = StdRng::seed_from_u64(27);
        let a = ar1.spawn(&mut rng);
        assert_eq!(a.autocorrelation(0.7), Some((-0.7f64).exp()));
        assert!((a.mean() - 1.0).abs() < 1e-12);
        assert!((a.variance() - 0.09).abs() < 1e-12);
    }
}
