//! Trace-driven traffic: piecewise-CBR playback of a recorded (or
//! synthesized) rate sequence.
//!
//! The paper's Figs 11–12 drive the MBAC with a piecewise-CBR version of
//! the MPEG-1 Starwars movie. A [`Trace`] holds the rate samples and the
//! slot duration; a [`TraceSource`] plays it back cyclically from a
//! random phase, so that concurrent flows are independently time-shifted
//! copies of the same movie (the standard methodology for trace-driven
//! multiplexing studies). Traces can be saved to / loaded from a plain
//! text format (`# key value` headers, one rate per line).

use crate::process::{RateProcess, SourceModel};
use rand::{Rng, RngCore};
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

/// An immutable rate trace: `rates[k]` holds the (constant) rate during
/// slot `k`, each slot lasting `slot` time units.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Per-slot rates.
    rates: Vec<f64>,
    /// Slot duration.
    slot: f64,
}

impl Trace {
    /// Creates a trace.
    ///
    /// # Panics
    /// Panics on an empty rate vector, non-positive slot, or negative /
    /// non-finite rates.
    pub fn new(rates: Vec<f64>, slot: f64) -> Self {
        assert!(!rates.is_empty(), "trace must have at least one slot");
        assert!(
            slot > 0.0 && slot.is_finite(),
            "slot duration must be positive"
        );
        for (i, &r) in rates.iter().enumerate() {
            assert!(
                r >= 0.0 && r.is_finite(),
                "rate[{i}] = {r} must be finite and >= 0"
            );
        }
        Trace { rates, slot }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the trace is empty (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Slot duration.
    pub fn slot(&self) -> f64 {
        self.slot
    }

    /// Total duration of one playback cycle.
    pub fn duration(&self) -> f64 {
        self.slot * self.rates.len() as f64
    }

    /// The raw rate samples.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Time-average rate.
    pub fn mean(&self) -> f64 {
        mbac_num::mean(&self.rates)
    }

    /// Time variance of the rate.
    pub fn variance(&self) -> f64 {
        mbac_num::variance(&self.rates)
    }

    /// Largest rate in the trace.
    pub fn peak(&self) -> f64 {
        self.rates.iter().cloned().fold(0.0, f64::max)
    }

    /// Serializes to the plain text trace format.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        writeln!(w, "# mbac-trace v1")?;
        writeln!(w, "# slot {}", self.slot)?;
        writeln!(w, "# samples {}", self.rates.len())?;
        for r in &self.rates {
            writeln!(w, "{r}")?;
        }
        Ok(())
    }

    /// Parses the plain text trace format.
    ///
    /// Lines starting with `#` are headers/comments; `# slot <x>` sets
    /// the slot duration (default 1.0). Every other non-empty line is
    /// one rate sample.
    pub fn read_from<R: Read>(r: R) -> std::io::Result<Self> {
        let reader = BufReader::new(r);
        let mut slot = 1.0f64;
        let mut rates = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let mut parts = rest.split_whitespace();
                if parts.next() == Some("slot") {
                    if let Some(v) = parts.next() {
                        slot = v.parse().map_err(|e| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("bad slot on line {}: {e}", lineno + 1),
                            )
                        })?;
                    }
                }
                continue;
            }
            let v: f64 = line.parse().map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad rate on line {}: {e}", lineno + 1),
                )
            })?;
            rates.push(v);
        }
        if rates.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "trace contains no samples",
            ));
        }
        Ok(Trace::new(rates, slot))
    }
}

/// Factory spawning independently-phased playbacks of a shared trace.
#[derive(Debug, Clone)]
pub struct TraceModel {
    trace: Arc<Trace>,
}

impl TraceModel {
    /// Wraps a trace for spawning.
    pub fn new(trace: Arc<Trace>) -> Self {
        TraceModel { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Arc<Trace> {
        &self.trace
    }
}

impl SourceModel for TraceModel {
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess> {
        Box::new(TraceSource::new(self.trace.clone(), rng))
    }

    fn mean(&self) -> f64 {
        self.trace.mean()
    }

    fn variance(&self) -> f64 {
        self.trace.variance()
    }
}

/// One flow playing the trace cyclically from a random initial phase.
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: Arc<Trace>,
    /// Playback position in `[0, duration)`.
    position: f64,
}

impl TraceSource {
    /// Creates a playback at a uniformly random phase.
    pub fn new(trace: Arc<Trace>, rng: &mut dyn RngCore) -> Self {
        let position = rng.gen::<f64>() * trace.duration();
        TraceSource { trace, position }
    }

    /// Current slot index.
    pub fn slot_index(&self) -> usize {
        ((self.position / self.trace.slot) as usize).min(self.trace.len() - 1)
    }
}

impl RateProcess for TraceSource {
    fn rate(&self) -> f64 {
        self.trace.rates[self.slot_index()]
    }

    fn advance(&mut self, dt: f64, _rng: &mut dyn RngCore) {
        assert!(dt >= 0.0);
        self.position = (self.position + dt) % self.trace.duration();
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.position = rng.gen::<f64>() * self.trace.duration();
    }

    fn mean(&self) -> f64 {
        self.trace.mean()
    }

    fn variance(&self) -> f64 {
        self.trace.variance()
    }

    fn autocorrelation(&self, _tau: f64) -> Option<f64> {
        None // empirical traffic: no closed form
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Arc<Trace> {
        Arc::new(Trace::new(vec![1.0, 2.0, 3.0, 2.0], 0.5))
    }

    #[test]
    fn trace_statistics() {
        let t = trace();
        assert_eq!(t.len(), 4);
        assert!((t.duration() - 2.0).abs() < 1e-12);
        assert!((t.mean() - 2.0).abs() < 1e-12);
        assert_eq!(t.peak(), 3.0);
    }

    #[test]
    fn playback_follows_slots() {
        let t = Arc::new(Trace::new(vec![10.0, 20.0], 1.0));
        let mut rng = StdRng::seed_from_u64(61);
        let mut s = TraceSource {
            trace: t,
            position: 0.0,
        };
        assert_eq!(s.rate(), 10.0);
        s.advance(1.0, &mut rng);
        assert_eq!(s.rate(), 20.0);
        s.advance(1.0, &mut rng); // wraps around
        assert_eq!(s.rate(), 10.0);
        s.advance(0.5, &mut rng);
        assert_eq!(s.rate(), 10.0);
        s.advance(0.5, &mut rng);
        assert_eq!(s.rate(), 20.0);
    }

    #[test]
    fn random_phases_differ_between_flows() {
        let model = TraceModel::new(trace());
        let mut rng = StdRng::seed_from_u64(62);
        let sources: Vec<_> = (0..16).map(|_| model.spawn(&mut rng)).collect();
        let rates: Vec<f64> = sources.iter().map(|s| s.rate()).collect();
        // With 16 random phases over 4 distinct values, not all equal.
        assert!(rates.iter().any(|&r| r != rates[0]));
    }

    #[test]
    fn io_roundtrip() {
        let t = trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(*t, back);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(Trace::read_from(&b"not a number\n"[..]).is_err());
        assert!(Trace::read_from(&b"# only headers\n"[..]).is_err());
        assert!(Trace::read_from(&b"# slot abc\n1.0\n"[..]).is_err());
    }

    #[test]
    fn read_accepts_comments_and_blank_lines() {
        let text = b"# mbac-trace v1\n# slot 2.5\n\n1.0\n# mid comment\n2.0\n";
        let t = Trace::read_from(&text[..]).unwrap();
        assert_eq!(t.len(), 2);
        assert!((t.slot() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn time_average_over_full_cycles_matches_mean() {
        let t = trace();
        let mut rng = StdRng::seed_from_u64(63);
        let mut s = TraceSource::new(t.clone(), &mut rng);
        let dt = 0.01;
        let steps = (t.duration() / dt).round() as usize * 5; // 5 cycles
        let mut acc = 0.0;
        for _ in 0..steps {
            acc += s.rate() * dt;
            s.advance(dt, &mut rng);
        }
        let avg = acc / (steps as f64 * dt);
        assert!((avg - t.mean()).abs() < 0.02, "avg {avg}");
    }

    #[test]
    #[should_panic]
    fn rejects_empty_trace() {
        Trace::new(vec![], 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_rate() {
        Trace::new(vec![1.0, -0.5], 1.0);
    }
}
