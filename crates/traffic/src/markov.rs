//! K-state Markov-modulated fluid sources.
//!
//! Each flow is a continuous-time Markov chain over `K` states; state
//! `k` emits a constant rate `r_k`. The paper's convergence theorem
//! (Assumption B.6) explicitly covers Markov fluids — "the condition
//! holds if each individual flow is a Markov modulated fluid" — so these
//! sources exercise the theory beyond the RCBR/OU case. The classical
//! on–off voice model is provided as a convenience constructor.

use crate::batch::{BatchKey, FlowBatch};
use crate::process::{RateProcess, SourceModel};
use mbac_num::linalg::{ctmc_stationary, Matrix};
use mbac_num::rng::{discrete, exponential};
use rand::rngs::StdRng;
use rand::RngCore;
use std::sync::Arc;

/// Immutable description of a Markov fluid model, shared by all flows
/// spawned from it.
#[derive(Debug)]
pub struct MarkovFluidModel {
    /// Generator matrix `Q` (row-major, rows sum to 0).
    generator: Matrix,
    /// Emission rate per state.
    rates: Vec<f64>,
    /// Stationary distribution `π`.
    stationary: Vec<f64>,
    /// Cached stationary mean.
    mean: f64,
    /// Cached stationary variance.
    variance: f64,
    /// Total exit rate per state (−Q_kk).
    exit_rates: Vec<f64>,
}

impl MarkovFluidModel {
    /// Builds a model from a generator matrix and per-state rates.
    ///
    /// # Panics
    /// Panics if the generator is not square, does not match the rate
    /// vector length, has rows that do not sum to ~0, has negative
    /// off-diagonal entries, or has no stationary distribution.
    pub fn new(generator: Matrix, rates: Vec<f64>) -> Arc<Self> {
        let k = generator.rows();
        assert_eq!(generator.cols(), k, "generator must be square");
        assert_eq!(rates.len(), k, "one emission rate per state");
        assert!(k >= 2, "need at least two states");
        for r in 0..k {
            let mut row_sum = 0.0;
            for c in 0..k {
                let v = generator.get(r, c);
                if r != c {
                    assert!(v >= 0.0, "off-diagonal Q[{r}][{c}] = {v} must be >= 0");
                }
                row_sum += v;
            }
            assert!(
                row_sum.abs() < 1e-9,
                "generator row {r} sums to {row_sum}, not 0"
            );
        }
        let stationary = ctmc_stationary(&generator).expect("generator has no stationary law");
        let mean: f64 = stationary.iter().zip(&rates).map(|(&p, &r)| p * r).sum();
        let variance: f64 = stationary
            .iter()
            .zip(&rates)
            .map(|(&p, &r)| p * (r - mean) * (r - mean))
            .sum();
        let exit_rates = (0..k).map(|i| -generator.get(i, i)).collect();
        Arc::new(MarkovFluidModel {
            generator,
            rates,
            stationary,
            mean,
            variance,
            exit_rates,
        })
    }

    /// The classical on–off source: rate `peak` while on, 0 while off,
    /// exponential on-periods (mean `mean_on`) and off-periods
    /// (mean `mean_off`). Activity factor `mean_on/(mean_on+mean_off)`.
    pub fn on_off(peak: f64, mean_on: f64, mean_off: f64) -> Arc<Self> {
        assert!(peak > 0.0 && mean_on > 0.0 && mean_off > 0.0);
        let lambda = 1.0 / mean_off; // off -> on
        let mu = 1.0 / mean_on; // on -> off
        let q = Matrix::from_rows(2, 2, vec![-lambda, lambda, mu, -mu]);
        Self::new(q, vec![0.0, peak])
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rates.len()
    }

    /// The stationary distribution `π`.
    pub fn stationary(&self) -> &[f64] {
        &self.stationary
    }

    /// The per-state emission rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Analytic autocorrelation for the *two-state* case:
    /// `ρ(τ) = e^{−(λ+μ)|τ|}`. Returns `None` for K > 2 (a closed form
    /// exists via the spectral decomposition of Q but is not needed).
    pub fn autocorrelation(&self, tau: f64) -> Option<f64> {
        if self.num_states() == 2 {
            let total = self.generator.get(0, 1) + self.generator.get(1, 0);
            Some((-total * tau.abs()).exp())
        } else {
            None
        }
    }

    fn jump_from(&self, state: usize, rng: &mut dyn RngCore) -> usize {
        let k = self.num_states();
        let weights: Vec<f64> = (0..k)
            .map(|c| {
                if c == state {
                    0.0
                } else {
                    self.generator.get(state, c)
                }
            })
            .collect();
        discrete(rng, &weights)
    }
}

/// Factory wrapper so `Arc<MarkovFluidModel>` can serve as a
/// [`SourceModel`].
#[derive(Debug, Clone)]
pub struct MarkovFluidFactory {
    model: Arc<MarkovFluidModel>,
}

impl MarkovFluidFactory {
    /// Wraps a shared model.
    pub fn new(model: Arc<MarkovFluidModel>) -> Self {
        MarkovFluidFactory { model }
    }
}

impl SourceModel for MarkovFluidFactory {
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess> {
        Box::new(MarkovFluidSource::new(self.model.clone(), rng))
    }

    fn mean(&self) -> f64 {
        self.model.mean
    }

    fn variance(&self) -> f64 {
        self.model.variance
    }

    fn batch_key(&self) -> Option<BatchKey> {
        // Flows can share a batch exactly when they share the generator;
        // the batch holds an `Arc` to the model, so the address stays
        // valid (and un-reused) for the batch's lifetime.
        Some(BatchKey::Markov(Arc::as_ptr(&self.model) as usize))
    }

    fn new_batch(&self) -> Option<Box<dyn FlowBatch>> {
        Some(Box::new(MarkovFluidBatch::new(self.model.clone())))
    }
}

/// Struct-of-arrays batch of Markov fluid flows sharing one generator.
/// The per-state jump weights are precomputed once (the boxed source
/// rebuilds the weight vector on every jump), and per-flow state lives
/// in contiguous arrays.
pub struct MarkovFluidBatch {
    model: Arc<MarkovFluidModel>,
    /// Jump weights per origin state (diagonal zeroed), precomputed.
    jump_weights: Vec<Vec<f64>>,
    /// Modulation state per flow.
    states: Vec<usize>,
    /// Residual sojourn time per flow.
    remaining: Vec<f64>,
    /// Cached emission rate per flow.
    rates: Vec<f64>,
}

impl MarkovFluidBatch {
    /// Creates an empty batch over a shared model.
    pub fn new(model: Arc<MarkovFluidModel>) -> Self {
        let k = model.num_states();
        let jump_weights = (0..k)
            .map(|s| {
                (0..k)
                    .map(|c| {
                        if c == s {
                            0.0
                        } else {
                            model.generator.get(s, c)
                        }
                    })
                    .collect()
            })
            .collect();
        MarkovFluidBatch {
            model,
            jump_weights,
            states: Vec::new(),
            remaining: Vec::new(),
            rates: Vec::new(),
        }
    }

    fn draw_sojourn(&self, state: usize, rng: &mut dyn RngCore) -> f64 {
        // Same draw as `MarkovFluidSource::draw_sojourn`.
        let rate = self.model.exit_rates[state];
        if rate <= 0.0 {
            f64::INFINITY
        } else {
            exponential(rng, 1.0 / rate)
        }
    }
}

impl FlowBatch for MarkovFluidBatch {
    fn len(&self) -> usize {
        self.states.len()
    }

    fn advance_all(&mut self, dt: f64, rng: &mut StdRng) {
        assert!(dt >= 0.0);
        // Lock-step slice iteration: no bounds checks in the hot loop.
        let (model, jump_weights) = (&self.model, &self.jump_weights);
        for ((state, rem), rate) in self
            .states
            .iter_mut()
            .zip(self.remaining.iter_mut())
            .zip(self.rates.iter_mut())
        {
            let mut left = dt;
            let mut s = *state;
            while left >= *rem {
                left -= *rem;
                s = discrete(rng, &jump_weights[s]);
                // Same draws as `MarkovFluidSource::draw_sojourn`.
                let exit = model.exit_rates[s];
                *rem = if exit <= 0.0 {
                    f64::INFINITY
                } else {
                    exponential(rng, 1.0 / exit)
                };
            }
            *rem -= left;
            *state = s;
            *rate = model.rates[s];
        }
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn spawn_one(&mut self, rng: &mut StdRng) {
        // Same draws as `MarkovFluidSource::reset`.
        let state = discrete(rng, &self.model.stationary);
        let remaining = self.draw_sojourn(state, rng);
        self.states.push(state);
        self.remaining.push(remaining);
        self.rates.push(self.model.rates[state]);
    }

    fn swap_remove(&mut self, i: usize) {
        self.states.swap_remove(i);
        self.remaining.swap_remove(i);
        self.rates.swap_remove(i);
    }
}

/// One Markov fluid flow.
#[derive(Debug, Clone)]
pub struct MarkovFluidSource {
    model: Arc<MarkovFluidModel>,
    state: usize,
    /// Residual sojourn time in the current state.
    remaining: f64,
}

impl MarkovFluidSource {
    /// Creates a flow with stationary initial state.
    pub fn new(model: Arc<MarkovFluidModel>, rng: &mut dyn RngCore) -> Self {
        let mut s = MarkovFluidSource {
            model,
            state: 0,
            remaining: 0.0,
        };
        s.reset(rng);
        s
    }

    /// The current modulation state.
    pub fn state(&self) -> usize {
        self.state
    }

    fn draw_sojourn(&self, rng: &mut dyn RngCore) -> f64 {
        let rate = self.model.exit_rates[self.state];
        if rate <= 0.0 {
            f64::INFINITY // absorbing state
        } else {
            exponential(rng, 1.0 / rate)
        }
    }
}

impl RateProcess for MarkovFluidSource {
    fn rate(&self) -> f64 {
        self.model.rates[self.state]
    }

    fn advance(&mut self, dt: f64, rng: &mut dyn RngCore) {
        assert!(dt >= 0.0);
        let mut left = dt;
        while left >= self.remaining {
            left -= self.remaining;
            self.state = self.model.jump_from(self.state, rng);
            self.remaining = self.draw_sojourn(rng);
        }
        self.remaining -= left;
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.state = discrete(rng, &self.model.stationary);
        // Exponential sojourns are memoryless: residual time is again
        // exponential with the full state mean.
        self.remaining = self.draw_sojourn(rng);
    }

    fn mean(&self) -> f64 {
        self.model.mean
    }

    fn variance(&self) -> f64 {
        self.model.variance
    }

    fn autocorrelation(&self, tau: f64) -> Option<f64> {
        self.model.autocorrelation(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::test_util::{check_acf, check_moments};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn on_off_moments() {
        // peak 2, on 1s, off 3s: activity 0.25, mean 0.5,
        // var = p(1-p)peak² = 0.25·0.75·4 = 0.75.
        let model = MarkovFluidModel::on_off(2.0, 1.0, 3.0);
        assert!((model.stationary()[1] - 0.25).abs() < 1e-12);
        let f = MarkovFluidFactory::new(model);
        assert!((f.mean() - 0.5).abs() < 1e-12);
        assert!((f.variance() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn on_off_empirical_moments() {
        let model = MarkovFluidModel::on_off(2.0, 1.0, 3.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut src = MarkovFluidSource::new(model, &mut rng);
        check_moments(&mut src, 0.2, 300_000, 0.01, 0.02, 12);
    }

    #[test]
    fn on_off_autocorrelation() {
        // λ + μ = 1/3 + 1 = 4/3 ⇒ ρ(τ) = e^{-4τ/3}.
        let model = MarkovFluidModel::on_off(1.0, 1.0, 3.0);
        assert!((model.autocorrelation(0.75).unwrap() - (-1.0f64).exp()).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut src = MarkovFluidSource::new(model, &mut rng);
        check_acf(&mut src, 0.25, 400_000, &[1, 2, 4], 0.02, 14);
    }

    #[test]
    fn three_state_video_model() {
        // Low/medium/high activity video: birth-death chain.
        let q = Matrix::from_rows(3, 3, vec![-0.5, 0.5, 0.0, 0.25, -0.75, 0.5, 0.0, 0.5, -0.5]);
        let model = MarkovFluidModel::new(q, vec![1.0, 3.0, 6.0]);
        let pi = model.stationary().to_vec();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let mean_direct: f64 = pi.iter().zip(model.rates()).map(|(&p, &r)| p * r).sum();
        let mut rng = StdRng::seed_from_u64(15);
        let mut src = MarkovFluidSource::new(model, &mut rng);
        check_moments(&mut src, 0.5, 200_000, 0.05, 0.2, 16);
        assert!((src.mean() - mean_direct).abs() < 1e-12);
        assert!(src.autocorrelation(1.0).is_none(), "no closed ACF for K=3");
    }

    #[test]
    fn states_visited_according_to_stationary_law() {
        let model = MarkovFluidModel::on_off(1.0, 2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(17);
        let mut src = MarkovFluidSource::new(model, &mut rng);
        let mut on_time = 0usize;
        let n = 200_000;
        for _ in 0..n {
            src.advance(0.1, &mut rng);
            if src.state() == 1 {
                on_time += 1;
            }
        }
        let frac = on_time as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "on fraction {frac}");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_generator_rows() {
        let q = Matrix::from_rows(2, 2, vec![-1.0, 0.5, 1.0, -1.0]);
        MarkovFluidModel::new(q, vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_off_diagonal() {
        let q = Matrix::from_rows(2, 2, vec![1.0, -1.0, 1.0, -1.0]);
        MarkovFluidModel::new(q, vec![0.0, 1.0]);
    }
}
