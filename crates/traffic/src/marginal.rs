//! Marginal rate distributions for generalized RCBR sources.
//!
//! Prop. 3.3 is *universal*: the certainty-equivalence penalty does not
//! depend on the stationary distribution of the flows, only on its
//! first two moments. To exercise that claim the generalized RCBR
//! source can negotiate rates from any of these marginals, each
//! parameterized directly by the target mean and standard deviation so
//! experiments can hold `(μ, σ)` fixed while swapping shapes.

use mbac_num::rng::{bernoulli, normal_truncated_below, standard_normal, uniform};
use rand::RngCore;

/// A marginal rate distribution with known mean and variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Marginal {
    /// Gaussian truncated at zero (the paper's choice; with σ/μ = 0.3
    /// the truncated mass is negligible).
    Gaussian {
        /// Mean of the untruncated Gaussian.
        mean: f64,
        /// Standard deviation of the untruncated Gaussian.
        sd: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// Two-point distribution: `low` w.p. `1 − p_high`, `high` w.p.
    /// `p_high` (an on–off marginal).
    TwoPoint {
        /// The low rate.
        low: f64,
        /// The high rate.
        high: f64,
        /// Probability of the high rate.
        p_high: f64,
    },
    /// Log-normal (heavy right tail, as measured for some VBR video).
    LogNormal {
        /// `μ` of the underlying normal.
        log_mean: f64,
        /// `σ` of the underlying normal.
        log_sd: f64,
    },
}

impl Marginal {
    /// Uniform marginal with the given mean and standard deviation
    /// (`lo,hi = mean ∓ √3·sd`).
    ///
    /// # Panics
    /// Panics if the implied lower endpoint is negative.
    pub fn uniform_with_moments(mean: f64, sd: f64) -> Self {
        let half = 3f64.sqrt() * sd;
        assert!(
            mean - half >= 0.0,
            "uniform marginal would reach negative rates"
        );
        Marginal::Uniform {
            lo: mean - half,
            hi: mean + half,
        }
    }

    /// Symmetric two-point marginal with the given mean and standard
    /// deviation (`low,high = mean ∓ sd`, `p_high = 1/2`).
    pub fn two_point_with_moments(mean: f64, sd: f64) -> Self {
        assert!(
            mean - sd >= 0.0,
            "two-point marginal would reach negative rates"
        );
        Marginal::TwoPoint {
            low: mean - sd,
            high: mean + sd,
            p_high: 0.5,
        }
    }

    /// Log-normal marginal with the given mean and standard deviation.
    pub fn lognormal_with_moments(mean: f64, sd: f64) -> Self {
        assert!(mean > 0.0 && sd > 0.0);
        let cv2 = (sd / mean) * (sd / mean);
        let log_sd = (1.0 + cv2).ln().sqrt();
        let log_mean = mean.ln() - 0.5 * log_sd * log_sd;
        Marginal::LogNormal { log_mean, log_sd }
    }

    /// Samples one rate.
    pub fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        match *self {
            Marginal::Gaussian { mean, sd } => {
                if sd == 0.0 {
                    mean
                } else {
                    normal_truncated_below(rng, mean, sd, 0.0)
                }
            }
            Marginal::Uniform { lo, hi } => uniform(rng, lo, hi),
            Marginal::TwoPoint { low, high, p_high } => {
                if bernoulli(rng, p_high) {
                    high
                } else {
                    low
                }
            }
            Marginal::LogNormal { log_mean, log_sd } => {
                (log_mean + log_sd * standard_normal(rng)).exp()
            }
        }
    }

    /// The distribution mean (of the *untruncated* Gaussian, matching
    /// the theory's convention).
    pub fn mean(&self) -> f64 {
        match *self {
            Marginal::Gaussian { mean, .. } => mean,
            Marginal::Uniform { lo, hi } => 0.5 * (lo + hi),
            Marginal::TwoPoint { low, high, p_high } => low + p_high * (high - low),
            Marginal::LogNormal { log_mean, log_sd } => (log_mean + 0.5 * log_sd * log_sd).exp(),
        }
    }

    /// The distribution variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Marginal::Gaussian { sd, .. } => sd * sd,
            Marginal::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Marginal::TwoPoint { low, high, p_high } => {
                let d = high - low;
                p_high * (1.0 - p_high) * d * d
            }
            Marginal::LogNormal { log_mean, log_sd } => {
                let s2 = log_sd * log_sd;
                ((s2).exp() - 1.0) * (2.0 * log_mean + s2).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_num::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_moments(m: Marginal, tol: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = RunningStats::new();
        for _ in 0..200_000 {
            stats.push(m.sample(&mut rng));
        }
        assert!(
            (stats.mean() - m.mean()).abs() < tol * (1.0 + m.mean().abs()),
            "{m:?}: sample mean {} vs {}",
            stats.mean(),
            m.mean()
        );
        assert!(
            (stats.variance() - m.variance()).abs() < 3.0 * tol * (1.0 + m.variance()),
            "{m:?}: sample var {} vs {}",
            stats.variance(),
            m.variance()
        );
    }

    #[test]
    fn gaussian_moments() {
        check_moments(Marginal::Gaussian { mean: 1.0, sd: 0.3 }, 0.01, 1);
    }

    #[test]
    fn uniform_moments_and_constructor() {
        let m = Marginal::uniform_with_moments(1.0, 0.3);
        assert!((m.mean() - 1.0).abs() < 1e-12);
        assert!((m.variance() - 0.09).abs() < 1e-12);
        check_moments(m, 0.01, 2);
    }

    #[test]
    fn two_point_moments_and_constructor() {
        let m = Marginal::two_point_with_moments(1.0, 0.3);
        assert!((m.mean() - 1.0).abs() < 1e-12);
        assert!((m.variance() - 0.09).abs() < 1e-12);
        check_moments(m, 0.01, 3);
        // Samples are only ever the two points.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let x = m.sample(&mut rng);
            assert!((x - 0.7).abs() < 1e-12 || (x - 1.3).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_moments_and_constructor() {
        let m = Marginal::lognormal_with_moments(1.0, 0.3);
        assert!((m.mean() - 1.0).abs() < 1e-9);
        assert!((m.variance() - 0.09).abs() < 1e-9);
        check_moments(m, 0.02, 5);
        // Strictly positive and right-skewed.
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(m.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn asymmetric_two_point() {
        let m = Marginal::TwoPoint {
            low: 0.0,
            high: 4.0,
            p_high: 0.25,
        };
        assert!((m.mean() - 1.0).abs() < 1e-12);
        assert!((m.variance() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn uniform_rejects_negative_support() {
        Marginal::uniform_with_moments(0.1, 0.5);
    }
}
