//! The [`RateProcess`] abstraction: a stationary stochastic bandwidth
//! process, advanced in continuous time by the simulator.
//!
//! Every traffic model in this crate implements `RateProcess`; the
//! simulator holds one instance per admitted flow. Processes are
//! object-safe (the simulator stores `Box<dyn RateProcess>`), take an
//! explicit RNG on every stochastic step for reproducibility, and report
//! their analytic moments so that perfect-knowledge controllers and
//! theory predictions can be computed without estimation.

use rand::RngCore;

/// A stationary bandwidth process `X(t)` for one flow.
pub trait RateProcess: Send {
    /// The instantaneous bandwidth at the process's current internal
    /// time. Constant between calls to [`RateProcess::advance`].
    fn rate(&self) -> f64;

    /// Advances internal time by `dt > 0`, resampling state as the
    /// model requires.
    fn advance(&mut self, dt: f64, rng: &mut dyn RngCore);

    /// Resamples the state from the stationary distribution (used when
    /// a fresh flow is admitted mid-simulation).
    fn reset(&mut self, rng: &mut dyn RngCore);

    /// The true stationary mean `μ`.
    fn mean(&self) -> f64;

    /// The true stationary variance `σ²`.
    fn variance(&self) -> f64;

    /// The analytic autocorrelation `ρ(τ)` at lag `τ`, if the model has
    /// a closed form (`None` otherwise — e.g. trace-driven sources).
    fn autocorrelation(&self, tau: f64) -> Option<f64>;
}

/// A factory that spawns independent per-flow processes; the simulator
/// uses one model for all flows of a class.
pub trait SourceModel: Send + Sync {
    /// Creates a new, independently-initialized flow process.
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess>;

    /// The true per-flow mean of spawned processes.
    fn mean(&self) -> f64;

    /// The true per-flow variance of spawned processes.
    fn variance(&self) -> f64;

    /// Standard deviation convenience.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// A structural key identifying which flows this model's spawns can
    /// share a batched kernel with (see [`crate::batch`]). `None` means
    /// the model has no batched kernel and its flows fall back to the
    /// boxed-process path.
    fn batch_key(&self) -> Option<crate::batch::BatchKey> {
        None
    }

    /// Creates an empty struct-of-arrays batch for this model's flows.
    /// Must return `Some` exactly when [`SourceModel::batch_key`] does,
    /// and the batch's per-flow draws must consume the RNG identically
    /// to [`SourceModel::spawn`] / [`RateProcess::advance`].
    fn new_batch(&self) -> Option<Box<dyn crate::batch::FlowBatch>> {
        None
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::RateProcess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Empirically checks the stationary mean/variance of a process by
    /// time-averaging over many correlation times.
    pub fn check_moments(
        proc: &mut dyn RateProcess,
        dt: f64,
        steps: usize,
        tol_mean: f64,
        tol_var: f64,
        seed: u64,
    ) {
        let (want_mean, want_var) = (proc.mean(), proc.variance());
        check_moments_fn(
            |dt, rng| {
                proc.advance(dt, rng);
                proc.rate()
            },
            dt,
            steps,
            want_mean,
            want_var,
            tol_mean,
            tol_var,
            seed,
        );
    }

    /// Closure form of [`check_moments`]: `step(dt, rng)` advances the
    /// sampled object by `dt` and returns its rate. Lets the batched
    /// kernels (whose `advance_all` takes a concrete [`StdRng`]) run
    /// through the same harness as boxed [`RateProcess`]es.
    #[allow(clippy::too_many_arguments)]
    pub fn check_moments_fn(
        mut step: impl FnMut(f64, &mut StdRng) -> f64,
        dt: f64,
        steps: usize,
        want_mean: f64,
        want_var: f64,
        tol_mean: f64,
        tol_var: f64,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = mbac_num::RunningStats::new();
        for _ in 0..steps {
            stats.push(step(dt, &mut rng));
        }
        assert!(
            (stats.mean() - want_mean).abs() < tol_mean,
            "mean: got {}, want {want_mean}",
            stats.mean()
        );
        assert!(
            (stats.variance() - want_var).abs() < tol_var,
            "variance: got {}, want {want_var}",
            stats.variance()
        );
    }

    /// Empirically checks the autocorrelation at the given lags against
    /// the process's analytic form.
    pub fn check_acf(
        proc: &mut dyn RateProcess,
        dt: f64,
        steps: usize,
        lags: &[usize],
        tol: f64,
        seed: u64,
    ) {
        let analytic: Vec<f64> = lags
            .iter()
            .map(|&lag| {
                proc.autocorrelation(lag as f64 * dt)
                    .expect("analytic ACF required")
            })
            .collect();
        check_acf_fn(
            |dt, rng| {
                proc.advance(dt, rng);
                proc.rate()
            },
            dt,
            steps,
            lags,
            &analytic,
            tol,
            seed,
        );
    }

    /// Closure form of [`check_acf`]; `want[i]` is the analytic ACF at
    /// `lags[i] * dt`.
    #[allow(clippy::too_many_arguments)]
    pub fn check_acf_fn(
        mut step: impl FnMut(f64, &mut StdRng) -> f64,
        dt: f64,
        steps: usize,
        lags: &[usize],
        want: &[f64],
        tol: f64,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let series: Vec<f64> = (0..steps).map(|_| step(dt, &mut rng)).collect();
        let max_lag = *lags.iter().max().unwrap();
        let acf = mbac_num::acf(&series, max_lag);
        for (&lag, &want) in lags.iter().zip(want) {
            let tau = lag as f64 * dt;
            assert!(
                (acf[lag] - want).abs() < tol,
                "acf at lag {lag} (τ={tau}): got {}, want {want}",
                acf[lag]
            );
        }
    }
}
