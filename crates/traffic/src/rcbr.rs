//! The paper's simulation source (§5.2): an RCBR (Renegotiated Constant
//! Bit Rate) flow.
//!
//! The rate is piecewise constant; at the end of each interval the flow
//! "renegotiates" to a fresh rate drawn from a Gaussian marginal with
//! `σ/μ` given (the paper uses 0.3). Interval lengths are i.i.d.
//! exponential with mean `T_c`, which — by memorylessness — makes the
//! rate process Markov with autocorrelation exactly
//! `ρ(τ) = e^{−|τ|/T_c}` (the paper's eqn (31)): the aggregate
//! fluctuation converges to the Ornstein–Uhlenbeck process assumed in
//! the theory.
//!
//! Rates can optionally be truncated at zero to stay physical; with the
//! paper's `σ/μ = 0.3` the truncated mass is `Q(3.33) ≈ 4e-4`, a
//! negligible perturbation of the moments (the analytic `mean()` /
//! `variance()` report the *untruncated* values, as the theory assumes).

use crate::batch::{BatchKey, FlowBatch};
use crate::process::{RateProcess, SourceModel};
use mbac_num::rng::{
    exponential, normal, normal_truncated_below, standard_exponential, standard_normal,
};
use rand::rngs::StdRng;
use rand::RngCore;

/// Configuration for RCBR flows.
#[derive(Debug, Clone, Copy)]
pub struct RcbrConfig {
    /// Marginal mean rate `μ`.
    pub mean: f64,
    /// Marginal standard deviation `σ`.
    pub std_dev: f64,
    /// Mean renegotiation interval `T_c` (the correlation time-scale).
    pub t_c: f64,
    /// Truncate negotiated rates at zero (keeps rates physical; see
    /// module docs).
    pub truncate_at_zero: bool,
}

impl RcbrConfig {
    /// The paper's standard setting: Gaussian marginal with
    /// `σ/μ = 0.3`, unit mean, and the given correlation time-scale.
    pub fn paper_default(t_c: f64) -> Self {
        RcbrConfig {
            mean: 1.0,
            std_dev: 0.3,
            t_c,
            truncate_at_zero: true,
        }
    }
}

/// Factory for independent RCBR flows.
#[derive(Debug, Clone, Copy)]
pub struct RcbrModel {
    cfg: RcbrConfig,
}

impl RcbrModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics unless mean, std-dev and `T_c` are positive and finite.
    pub fn new(cfg: RcbrConfig) -> Self {
        assert!(cfg.mean > 0.0 && cfg.mean.is_finite());
        assert!(cfg.std_dev >= 0.0 && cfg.std_dev.is_finite());
        assert!(cfg.t_c > 0.0 && cfg.t_c.is_finite());
        RcbrModel { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> RcbrConfig {
        self.cfg
    }
}

impl SourceModel for RcbrModel {
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess> {
        let mut src = RcbrSource {
            cfg: self.cfg,
            rate: 0.0,
            remaining: 0.0,
        };
        src.reset(rng);
        Box::new(src)
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.std_dev * self.cfg.std_dev
    }

    fn batch_key(&self) -> Option<BatchKey> {
        Some(BatchKey::Rcbr {
            mean: self.cfg.mean,
            std_dev: self.cfg.std_dev,
            t_c: self.cfg.t_c,
            truncate_at_zero: self.cfg.truncate_at_zero,
        })
    }

    fn new_batch(&self) -> Option<Box<dyn FlowBatch>> {
        Some(Box::new(RcbrBatch::new(self.cfg)))
    }
}

/// Struct-of-arrays batch of RCBR flows: the negotiated rates double as
/// the cached rate vector (the rate *is* the state), and residual
/// interval lives sit in a parallel array, so a tick that renegotiates
/// nothing touches exactly two contiguous arrays with no virtual calls.
pub struct RcbrBatch {
    cfg: RcbrConfig,
    /// Negotiated rate per flow — also the cached rate vector.
    rates: Vec<f64>,
    /// Residual life of the current interval per flow.
    remaining: Vec<f64>,
    /// Scratch: slots whose interval expired this tick.
    due: Vec<u32>,
}

impl RcbrBatch {
    /// Creates an empty batch for flows of the given configuration.
    pub fn new(cfg: RcbrConfig) -> Self {
        RcbrBatch {
            cfg,
            rates: Vec::new(),
            remaining: Vec::new(),
            due: Vec::new(),
        }
    }

    fn draw_rate(&self, rng: &mut dyn RngCore) -> f64 {
        // Same draw as `RcbrSource::draw_rate`.
        if self.cfg.truncate_at_zero {
            normal_truncated_below(rng, self.cfg.mean, self.cfg.std_dev.max(1e-300), 0.0)
        } else {
            normal(rng, self.cfg.mean, self.cfg.std_dev)
        }
    }
}

impl FlowBatch for RcbrBatch {
    fn len(&self) -> usize {
        self.rates.len()
    }

    fn advance_all(&mut self, dt: f64, rng: &mut StdRng) {
        assert!(dt >= 0.0, "cannot advance backwards");
        let RcbrConfig {
            mean,
            std_dev,
            t_c,
            truncate_at_zero,
        } = self.cfg;
        // The boxed source floors σ only on the truncated path.
        let sd = if truncate_at_zero {
            std_dev.max(1e-300)
        } else {
            std_dev
        };
        // Pass 1: age every interval (a branchless subtract the
        // compiler vectorizes), then collect the flows whose interval
        // expired. The boxed source's `left >= remaining` is
        // `remaining - dt <= 0` here — exactly, since a nonzero
        // difference of nearby doubles never rounds to zero (Sterbenz)
        // and IEEE subtraction is antisymmetric. The conditional-append
        // idiom keeps the scan free of data-dependent branches, which
        // would otherwise mispredict on ~20% of flows per tick.
        let n = self.remaining.len();
        self.due.resize(n, 0);
        for rem in self.remaining.iter_mut() {
            *rem -= dt;
        }
        let mut count = 0usize;
        for (i, rem) in self.remaining.iter().enumerate() {
            self.due[count] = i as u32;
            count += (*rem <= 0.0) as usize;
        }
        // Pass 2: renegotiate the due flows, in flow order, consuming
        // the RNG exactly as `RcbrSource::advance` does (rate draw then
        // interval draw per renegotiation). The draws are inlined
        // rather than routed through `normal_truncated_below` /
        // `exponential` so their per-call argument checks stay out of
        // the loop; the draw sequence is identical.
        for &i in &self.due[..count] {
            let i = i as usize;
            let mut left = -self.remaining[i]; // dt minus the old residual
            loop {
                self.rates[i] = loop {
                    let x = mean + sd * standard_normal(rng);
                    if !truncate_at_zero || x >= 0.0 {
                        break x;
                    }
                };
                let interval = t_c * standard_exponential(rng);
                if left >= interval {
                    left -= interval;
                } else {
                    self.remaining[i] = interval - left;
                    break;
                }
            }
        }
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn spawn_one(&mut self, rng: &mut StdRng) {
        // Same draws as `RcbrSource::reset`.
        let rate = self.draw_rate(rng);
        let remaining = exponential(rng, self.cfg.t_c);
        self.rates.push(rate);
        self.remaining.push(remaining);
    }

    fn swap_remove(&mut self, i: usize) {
        self.rates.swap_remove(i);
        self.remaining.swap_remove(i);
    }
}

/// One RCBR flow: current negotiated rate plus the residual life of the
/// current interval.
#[derive(Debug, Clone)]
pub struct RcbrSource {
    cfg: RcbrConfig,
    rate: f64,
    remaining: f64,
}

impl RcbrSource {
    /// Creates a flow in its stationary distribution.
    pub fn new(cfg: RcbrConfig, rng: &mut dyn RngCore) -> Self {
        let mut s = RcbrSource {
            cfg,
            rate: 0.0,
            remaining: 0.0,
        };
        s.reset(rng);
        s
    }

    fn draw_rate(&self, rng: &mut dyn RngCore) -> f64 {
        if self.cfg.truncate_at_zero {
            normal_truncated_below(rng, self.cfg.mean, self.cfg.std_dev.max(1e-300), 0.0)
        } else {
            normal(rng, self.cfg.mean, self.cfg.std_dev)
        }
    }
}

impl RateProcess for RcbrSource {
    fn rate(&self) -> f64 {
        self.rate
    }

    fn advance(&mut self, dt: f64, rng: &mut dyn RngCore) {
        assert!(dt >= 0.0, "cannot advance backwards");
        let mut left = dt;
        while left >= self.remaining {
            left -= self.remaining;
            // Renegotiate: fresh rate, fresh exponential interval.
            self.rate = self.draw_rate(rng);
            self.remaining = exponential(rng, self.cfg.t_c);
        }
        self.remaining -= left;
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.rate = self.draw_rate(rng);
        // Memorylessness: the stationary residual interval is again
        // exponential with mean T_c.
        self.remaining = exponential(rng, self.cfg.t_c);
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.std_dev * self.cfg.std_dev
    }

    fn autocorrelation(&self, tau: f64) -> Option<f64> {
        Some((-tau.abs() / self.cfg.t_c).exp())
    }
}

/// Generalized RCBR source: same renewal structure (piecewise-constant
/// rate, exponential intervals ⇒ exact OU autocorrelation), arbitrary
/// [`Marginal`] rate distribution. Used by the Prop. 3.3 universality
/// experiment to hold `(μ, σ, T_c)` fixed while swapping the shape.
#[derive(Debug, Clone, Copy)]
pub struct GeneralRcbrModel {
    marginal: Marginal,
    t_c: f64,
}

use crate::marginal::Marginal;

impl GeneralRcbrModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics unless `t_c > 0` and finite.
    pub fn new(marginal: Marginal, t_c: f64) -> Self {
        assert!(t_c > 0.0 && t_c.is_finite());
        GeneralRcbrModel { marginal, t_c }
    }

    /// The configured marginal.
    pub fn marginal(&self) -> Marginal {
        self.marginal
    }
}

impl SourceModel for GeneralRcbrModel {
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess> {
        Box::new(GeneralRcbrSource {
            marginal: self.marginal,
            t_c: self.t_c,
            rate: self.marginal.sample(rng),
            remaining: exponential(rng, self.t_c),
        })
    }

    fn mean(&self) -> f64 {
        self.marginal.mean()
    }

    fn variance(&self) -> f64 {
        self.marginal.variance()
    }

    fn batch_key(&self) -> Option<BatchKey> {
        Some(BatchKey::GeneralRcbr {
            marginal: self.marginal,
            t_c: self.t_c,
        })
    }

    fn new_batch(&self) -> Option<Box<dyn FlowBatch>> {
        Some(Box::new(GeneralRcbrBatch {
            marginal: self.marginal,
            t_c: self.t_c,
            rates: Vec::new(),
            remaining: Vec::new(),
        }))
    }
}

/// Struct-of-arrays batch of generalized-RCBR flows; same layout as
/// [`RcbrBatch`] with the marginal sampler swapped in.
pub struct GeneralRcbrBatch {
    marginal: Marginal,
    t_c: f64,
    rates: Vec<f64>,
    remaining: Vec<f64>,
}

impl FlowBatch for GeneralRcbrBatch {
    fn len(&self) -> usize {
        self.rates.len()
    }

    fn advance_all(&mut self, dt: f64, rng: &mut StdRng) {
        assert!(dt >= 0.0);
        for i in 0..self.rates.len() {
            let mut left = dt;
            while left >= self.remaining[i] {
                left -= self.remaining[i];
                self.rates[i] = self.marginal.sample(rng);
                self.remaining[i] = exponential(rng, self.t_c);
            }
            self.remaining[i] -= left;
        }
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn spawn_one(&mut self, rng: &mut StdRng) {
        // Same draws as `GeneralRcbrModel::spawn`.
        let rate = self.marginal.sample(rng);
        let remaining = exponential(rng, self.t_c);
        self.rates.push(rate);
        self.remaining.push(remaining);
    }

    fn swap_remove(&mut self, i: usize) {
        self.rates.swap_remove(i);
        self.remaining.swap_remove(i);
    }
}

/// One generalized-RCBR flow.
#[derive(Debug, Clone)]
pub struct GeneralRcbrSource {
    marginal: Marginal,
    t_c: f64,
    rate: f64,
    remaining: f64,
}

impl RateProcess for GeneralRcbrSource {
    fn rate(&self) -> f64 {
        self.rate
    }

    fn advance(&mut self, dt: f64, rng: &mut dyn RngCore) {
        assert!(dt >= 0.0);
        let mut left = dt;
        while left >= self.remaining {
            left -= self.remaining;
            self.rate = self.marginal.sample(rng);
            self.remaining = exponential(rng, self.t_c);
        }
        self.remaining -= left;
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        self.rate = self.marginal.sample(rng);
        self.remaining = exponential(rng, self.t_c);
    }

    fn mean(&self) -> f64 {
        self.marginal.mean()
    }

    fn variance(&self) -> f64 {
        self.marginal.variance()
    }

    fn autocorrelation(&self, tau: f64) -> Option<f64> {
        Some((-tau.abs() / self.t_c).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::test_util::{check_acf, check_moments};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> RcbrConfig {
        RcbrConfig::paper_default(1.0)
    }

    #[test]
    fn stationary_moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = RcbrSource::new(cfg(), &mut rng);
        check_moments(&mut src, 0.25, 200_000, 0.01, 0.01, 2);
    }

    #[test]
    fn autocorrelation_is_exponential() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut src = RcbrSource::new(cfg(), &mut rng);
        // dt = 0.5, so lags 1..6 cover τ = 0.5..3 = 3 T_c.
        check_acf(&mut src, 0.5, 400_000, &[1, 2, 4, 6], 0.02, 4);
    }

    #[test]
    fn rate_constant_within_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut src = RcbrSource::new(
            RcbrConfig {
                mean: 1.0,
                std_dev: 0.3,
                t_c: 1e9,
                truncate_at_zero: true,
            },
            &mut rng,
        );
        let r0 = src.rate();
        for _ in 0..100 {
            src.advance(0.001, &mut rng);
            assert_eq!(src.rate(), r0, "rate must not change inside an interval");
        }
    }

    #[test]
    fn advancing_past_many_intervals_changes_rate() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut src = RcbrSource::new(cfg(), &mut rng);
        let r0 = src.rate();
        src.advance(1000.0, &mut rng); // ~1000 renegotiations
        assert_ne!(src.rate(), r0);
    }

    #[test]
    fn truncation_keeps_rates_nonnegative() {
        let mut rng = StdRng::seed_from_u64(7);
        // Heavier tail into zero: σ/μ = 0.5.
        let mut src = RcbrSource::new(
            RcbrConfig {
                mean: 1.0,
                std_dev: 0.5,
                t_c: 0.1,
                truncate_at_zero: true,
            },
            &mut rng,
        );
        for _ in 0..50_000 {
            src.advance(0.1, &mut rng);
            assert!(src.rate() >= 0.0);
        }
    }

    #[test]
    fn model_spawns_independent_flows() {
        let model = RcbrModel::new(cfg());
        let mut rng = StdRng::seed_from_u64(8);
        let a = model.spawn(&mut rng);
        let b = model.spawn(&mut rng);
        // Two fresh stationary draws are almost surely different.
        assert_ne!(a.rate(), b.rate());
        assert_eq!(model.mean(), 1.0);
        assert!((model.std_dev() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn general_rcbr_uniform_marginal_moments() {
        let model = GeneralRcbrModel::new(Marginal::uniform_with_moments(1.0, 0.3), 1.0);
        let mut rng = StdRng::seed_from_u64(100);
        let mut src = model.spawn(&mut rng);
        check_moments(src.as_mut(), 0.25, 150_000, 0.01, 0.01, 101);
    }

    #[test]
    fn general_rcbr_two_point_autocorrelation() {
        let model = GeneralRcbrModel::new(Marginal::two_point_with_moments(1.0, 0.3), 1.0);
        let mut rng = StdRng::seed_from_u64(102);
        let mut src = model.spawn(&mut rng);
        check_acf(src.as_mut(), 0.5, 300_000, &[1, 2, 4], 0.02, 103);
    }

    #[test]
    fn general_rcbr_matches_classic_for_gaussian_marginal() {
        let general = GeneralRcbrModel::new(Marginal::Gaussian { mean: 1.0, sd: 0.3 }, 2.0);
        let classic = RcbrModel::new(RcbrConfig {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 2.0,
            truncate_at_zero: true,
        });
        assert_eq!(general.mean(), classic.mean());
        assert_eq!(general.variance(), classic.variance());
        let mut rng = StdRng::seed_from_u64(104);
        let g = general.spawn(&mut rng);
        assert_eq!(g.autocorrelation(1.0), Some((-0.5f64).exp()));
    }

    #[test]
    fn zero_dt_advance_is_identity() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut src = RcbrSource::new(cfg(), &mut rng);
        let r = src.rate();
        src.advance(0.0, &mut rng);
        assert_eq!(src.rate(), r);
    }
}
