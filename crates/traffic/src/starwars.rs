//! Synthetic "Starwars-like" long-range-dependent video trace.
//!
//! The paper's Figs 11–12 use a piecewise-CBR encoding of the MPEG-1
//! Starwars movie (Garrett & Willinger's trace), which exhibits
//! long-range dependence (Hurst ≈ 0.8 in published analyses) and which
//! we cannot redistribute. This module synthesizes a trace with the
//! properties those experiments actually exercise (see DESIGN.md §4):
//!
//! * Gaussian-like marginal with configurable `σ/μ` (0.3, matching the
//!   paper's other experiments);
//! * genuine long-range dependence from exact fractional Gaussian noise
//!   (Davies–Harte), Hurst `H` configurable;
//! * piecewise-CBR structure: rates quantized to a configurable number
//!   of levels and held constant over slots, like an RCBR encoding of a
//!   movie.
//!
//! The generated [`Trace`] plugs into [`crate::trace::TraceSource`] for
//! the Figs 11–12 reproduction.

use crate::fgn::davies_harte;
use crate::trace::Trace;
use rand::RngCore;

/// Parameters of the synthetic movie trace.
#[derive(Debug, Clone, Copy)]
pub struct StarwarsConfig {
    /// Mean rate `μ`.
    pub mean: f64,
    /// Coefficient of variation `σ/μ` (paper: 0.3).
    pub cov: f64,
    /// Hurst parameter (published Starwars analyses: ≈ 0.8).
    pub hurst: f64,
    /// Number of slots in the trace.
    pub slots: usize,
    /// Slot duration (the piecewise-CBR renegotiation granularity).
    pub slot: f64,
    /// Number of quantization levels (0 = no quantization). RCBR
    /// encodings renegotiate among a small set of rates.
    pub levels: usize,
}

impl Default for StarwarsConfig {
    fn default() -> Self {
        StarwarsConfig {
            mean: 1.0,
            cov: 0.3,
            hurst: 0.8,
            slots: 1 << 15,
            slot: 1.0,
            levels: 32,
        }
    }
}

/// Generates the synthetic LRD piecewise-CBR trace.
///
/// The fGn sample path is mapped to rates `μ(1 + cov·z)`, floored at
/// `0.05 μ` (a video never emits zero bits), then quantized.
///
/// # Panics
/// Panics on nonsensical parameters.
pub fn generate_starwars_like(cfg: &StarwarsConfig, rng: &mut dyn RngCore) -> Trace {
    assert!(cfg.mean > 0.0 && cfg.cov > 0.0);
    assert!(cfg.hurst > 0.0 && cfg.hurst < 1.0);
    assert!(cfg.slots > 0 && cfg.slot > 0.0);
    let z = davies_harte(cfg.hurst, cfg.slots, rng);
    let floor = 0.05 * cfg.mean;
    let peak = cfg.mean * (1.0 + 4.0 * cfg.cov); // clip at +4σ like a VBR encoder cap
    let mut rates: Vec<f64> = z
        .into_iter()
        .map(|v| (cfg.mean * (1.0 + cfg.cov * v)).clamp(floor, peak))
        .collect();
    if cfg.levels > 1 {
        let step = (peak - floor) / (cfg.levels - 1) as f64;
        for r in &mut rates {
            *r = floor + ((*r - floor) / step).round() * step;
        }
    }
    Trace::new(rates, cfg.slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{hurst_rs, hurst_variance_time};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(seed: u64) -> Trace {
        let cfg = StarwarsConfig::default();
        generate_starwars_like(&cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn marginal_statistics_close_to_target() {
        let t = make(71);
        // LRD sample means converge slowly; allow a loose band.
        assert!((t.mean() - 1.0).abs() < 0.1, "mean {}", t.mean());
        let cov = t.variance().sqrt() / t.mean();
        assert!((cov - 0.3).abs() < 0.07, "cov {cov}");
    }

    #[test]
    fn trace_is_long_range_dependent() {
        let t = make(72);
        let h_vt = hurst_variance_time(t.rates());
        let h_rs = hurst_rs(t.rates());
        assert!(
            h_vt > 0.65,
            "variance-time Hurst {h_vt} should indicate LRD"
        );
        assert!(h_rs > 0.6, "R/S Hurst {h_rs} should indicate LRD");
    }

    #[test]
    fn quantization_limits_distinct_levels() {
        let t = make(73);
        let mut levels: Vec<u64> = t.rates().iter().map(|r| r.to_bits()).collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(
            levels.len() <= 32,
            "expected ≤ 32 distinct rates, got {}",
            levels.len()
        );
        assert!(
            levels.len() > 5,
            "quantization should still leave real variety"
        );
    }

    #[test]
    fn rates_respect_floor_and_cap() {
        let t = make(74);
        for &r in t.rates() {
            assert!(
                (0.05 - 1e-12..=1.0 + 4.0 * 0.3 + 1e-12).contains(&r),
                "rate {r}"
            );
        }
    }

    #[test]
    fn unquantized_variant_has_continuous_rates() {
        let cfg = StarwarsConfig {
            levels: 0,
            slots: 4096,
            ..StarwarsConfig::default()
        };
        let t = generate_starwars_like(&cfg, &mut StdRng::seed_from_u64(75));
        let mut levels: Vec<u64> = t.rates().iter().map(|r| r.to_bits()).collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(
            levels.len() > 1000,
            "unquantized trace should be continuous-ish"
        );
    }

    #[test]
    fn short_memory_config_is_not_lrd() {
        // Control: H = 0.5 produces white-noise rates.
        let cfg = StarwarsConfig {
            hurst: 0.5,
            slots: 1 << 14,
            ..StarwarsConfig::default()
        };
        let t = generate_starwars_like(&cfg, &mut StdRng::seed_from_u64(76));
        let h = hurst_variance_time(t.rates());
        assert!((h - 0.5).abs() < 0.1, "H estimate {h} for white noise");
    }
}
