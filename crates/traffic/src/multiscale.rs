//! Multi-time-scale traffic: a superposition of independent RCBR
//! components with different correlation time-scales.
//!
//! §5.3 of the paper argues the `T_m = T̃_h` window rule extends beyond
//! single-time-scale traffic, because fluctuations faster than `T̃_h`
//! get smoothed and slower ones get tracked. This source provides the
//! multi-scale test traffic: `X(t) = μ + Σ_i D_i(t)` where each
//! `D_i` is an independent zero-mean RCBR deviation with its own `T_c,i`
//! and variance share, giving the mixture autocorrelation
//! `ρ(τ) = Σ_i w_i e^{−|τ|/T_c,i}` (a discrete approximation of
//! long-range dependence when the `T_c,i` span decades).

use crate::process::{RateProcess, SourceModel};
use mbac_num::rng::{exponential, normal};
use rand::RngCore;

/// One correlation component of the mixture.
#[derive(Debug, Clone, Copy)]
pub struct ScaleComponent {
    /// Correlation time-scale of this component.
    pub t_c: f64,
    /// Variance contributed by this component.
    pub variance: f64,
}

/// Configuration of a multi-scale source.
#[derive(Debug, Clone)]
pub struct MultiScaleConfig {
    /// Overall mean rate `μ`.
    pub mean: f64,
    /// Variance components (their variances add to `σ²`).
    pub components: Vec<ScaleComponent>,
    /// Clamp the summed rate at zero.
    pub clamp_at_zero: bool,
}

impl MultiScaleConfig {
    /// A geometric ladder of `k` time-scales from `t_c_min` to
    /// `t_c_max` with equal variance shares summing to `variance` —
    /// the standard LRD-like test configuration.
    pub fn geometric_ladder(
        mean: f64,
        variance: f64,
        t_c_min: f64,
        t_c_max: f64,
        k: usize,
    ) -> Self {
        assert!(k >= 1 && t_c_min > 0.0 && t_c_max >= t_c_min);
        let components = (0..k)
            .map(|i| {
                let t_c = if k == 1 {
                    t_c_min
                } else {
                    t_c_min * (t_c_max / t_c_min).powf(i as f64 / (k - 1) as f64)
                };
                ScaleComponent {
                    t_c,
                    variance: variance / k as f64,
                }
            })
            .collect();
        MultiScaleConfig {
            mean,
            components,
            clamp_at_zero: true,
        }
    }
}

/// Factory for multi-scale flows.
#[derive(Debug, Clone)]
pub struct MultiScaleModel {
    cfg: MultiScaleConfig,
}

impl MultiScaleModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics on empty components or non-positive parameters.
    pub fn new(cfg: MultiScaleConfig) -> Self {
        assert!(cfg.mean > 0.0 && cfg.mean.is_finite());
        assert!(!cfg.components.is_empty(), "need at least one component");
        for c in &cfg.components {
            assert!(c.t_c > 0.0 && c.variance >= 0.0);
        }
        MultiScaleModel { cfg }
    }
}

impl SourceModel for MultiScaleModel {
    fn spawn(&self, rng: &mut dyn RngCore) -> Box<dyn RateProcess> {
        let mut s = MultiScaleSource {
            cfg: self.cfg.clone(),
            states: vec![ComponentState::default(); self.cfg.components.len()],
        };
        s.reset(rng);
        Box::new(s)
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.components.iter().map(|c| c.variance).sum()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ComponentState {
    deviation: f64,
    remaining: f64,
}

/// One multi-scale flow: a bank of independent piecewise-constant
/// zero-mean deviations.
#[derive(Debug, Clone)]
pub struct MultiScaleSource {
    cfg: MultiScaleConfig,
    states: Vec<ComponentState>,
}

impl MultiScaleSource {
    /// Creates a flow in its stationary distribution.
    pub fn new(cfg: MultiScaleConfig, rng: &mut dyn RngCore) -> Self {
        let n = cfg.components.len();
        let mut s = MultiScaleSource {
            cfg,
            states: vec![ComponentState::default(); n],
        };
        s.reset(rng);
        s
    }
}

impl RateProcess for MultiScaleSource {
    fn rate(&self) -> f64 {
        let dev: f64 = self.states.iter().map(|s| s.deviation).sum();
        let r = self.cfg.mean + dev;
        if self.cfg.clamp_at_zero {
            r.max(0.0)
        } else {
            r
        }
    }

    fn advance(&mut self, dt: f64, rng: &mut dyn RngCore) {
        assert!(dt >= 0.0);
        for (comp, st) in self.cfg.components.iter().zip(&mut self.states) {
            let mut left = dt;
            while left >= st.remaining {
                left -= st.remaining;
                st.deviation = normal(rng, 0.0, comp.variance.sqrt());
                st.remaining = exponential(rng, comp.t_c);
            }
            st.remaining -= left;
        }
    }

    fn reset(&mut self, rng: &mut dyn RngCore) {
        for (comp, st) in self.cfg.components.iter().zip(&mut self.states) {
            st.deviation = normal(rng, 0.0, comp.variance.sqrt());
            st.remaining = exponential(rng, comp.t_c);
        }
    }

    fn mean(&self) -> f64 {
        self.cfg.mean
    }

    fn variance(&self) -> f64 {
        self.cfg.components.iter().map(|c| c.variance).sum()
    }

    fn autocorrelation(&self, tau: f64) -> Option<f64> {
        let total: f64 = self.variance();
        if total <= 0.0 {
            return Some(0.0);
        }
        Some(
            self.cfg
                .components
                .iter()
                .map(|c| c.variance / total * (-tau.abs() / c.t_c).exp())
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::test_util::{check_acf, check_moments};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> MultiScaleConfig {
        MultiScaleConfig {
            mean: 1.0,
            components: vec![
                ScaleComponent {
                    t_c: 0.2,
                    variance: 0.03,
                },
                ScaleComponent {
                    t_c: 2.0,
                    variance: 0.03,
                },
                ScaleComponent {
                    t_c: 20.0,
                    variance: 0.03,
                },
            ],
            clamp_at_zero: false,
        }
    }

    #[test]
    fn moments_add_across_components() {
        let m = MultiScaleModel::new(cfg());
        assert!((m.variance() - 0.09).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(31);
        let mut s = MultiScaleSource::new(cfg(), &mut rng);
        check_moments(&mut s, 0.5, 400_000, 0.02, 0.01, 32);
    }

    #[test]
    fn mixture_autocorrelation() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut s = MultiScaleSource::new(cfg(), &mut rng);
        // Analytic mixture at τ = 1: (e^{-5} + e^{-0.5} + e^{-0.05})/3.
        let want = ((-5.0f64).exp() + (-0.5f64).exp() + (-0.05f64).exp()) / 3.0;
        assert!((s.autocorrelation(1.0).unwrap() - want).abs() < 1e-12);
        check_acf(&mut s, 1.0, 400_000, &[1, 2], 0.03, 34);
    }

    #[test]
    fn slow_component_produces_long_memory() {
        // The mixture ACF at τ = 10 must vastly exceed a single-scale
        // exponential with the fast time constant.
        let mut rng = StdRng::seed_from_u64(35);
        let s = MultiScaleSource::new(cfg(), &mut rng);
        let mix = s.autocorrelation(10.0).unwrap();
        let single = (-10.0f64 / 0.2).exp();
        assert!(
            mix > 1000.0 * single,
            "mixture {mix} vs single-scale {single}"
        );
    }

    #[test]
    fn geometric_ladder_construction() {
        let cfg = MultiScaleConfig::geometric_ladder(2.0, 0.36, 0.1, 100.0, 4);
        assert_eq!(cfg.components.len(), 4);
        assert!((cfg.components[0].t_c - 0.1).abs() < 1e-12);
        assert!((cfg.components[3].t_c - 100.0).abs() < 1e-9);
        let total: f64 = cfg.components.iter().map(|c| c.variance).sum();
        assert!((total - 0.36).abs() < 1e-12);
        // Geometric spacing: ratio of consecutive scales is constant.
        let r1 = cfg.components[1].t_c / cfg.components[0].t_c;
        let r2 = cfg.components[2].t_c / cfg.components[1].t_c;
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn single_component_reduces_to_rcbr_statistics() {
        let cfg = MultiScaleConfig {
            mean: 1.0,
            components: vec![ScaleComponent {
                t_c: 1.0,
                variance: 0.09,
            }],
            clamp_at_zero: false,
        };
        let mut rng = StdRng::seed_from_u64(36);
        let s = MultiScaleSource::new(cfg, &mut rng);
        assert!((s.autocorrelation(0.5).unwrap() - (-0.5f64).exp()).abs() < 1e-12);
    }
}
