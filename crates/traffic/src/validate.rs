//! Empirical validators for traffic models: Hurst-parameter estimation
//! and autocorrelation fitting.
//!
//! Used to certify that the synthetic Starwars-like trace really is
//! long-range dependent (Figs 11–12 depend on that property) and that
//! the short-memory sources really have the exponential autocorrelation
//! the theory assumes.

use mbac_num::{acf, linear_fit, mean, variance};

/// Hurst estimate from the variance-time plot: `Var(X̄_m) ~ m^{2H−2}`,
/// fit on a log-log grid of aggregation levels.
///
/// # Panics
/// Panics if the series is shorter than 64 samples (too short for any
/// meaningful aggregation fit).
pub fn hurst_variance_time(xs: &[f64]) -> f64 {
    assert!(
        xs.len() >= 64,
        "series too short for variance-time analysis"
    );
    let mut log_m = Vec::new();
    let mut log_v = Vec::new();
    let mut m = 1usize;
    while xs.len() / m >= 16 {
        let blocks: Vec<f64> = xs.chunks_exact(m).map(mean).collect();
        let v = variance(&blocks);
        if v > 0.0 {
            log_m.push((m as f64).ln());
            log_v.push(v.ln());
        }
        m *= 2;
    }
    let fit = linear_fit(&log_m, &log_v);
    // slope = 2H − 2.
    ((fit.slope + 2.0) / 2.0).clamp(0.0, 1.0)
}

/// Hurst estimate from rescaled-range (R/S) analysis:
/// `E[R(m)/S(m)] ~ m^H`.
///
/// # Panics
/// Panics if the series is shorter than 64 samples.
pub fn hurst_rs(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 64, "series too short for R/S analysis");
    let mut log_m = Vec::new();
    let mut log_rs = Vec::new();
    let mut m = 16usize;
    while xs.len() / m >= 4 {
        let mut rs_acc = 0.0;
        let mut blocks = 0usize;
        for block in xs.chunks_exact(m) {
            if let Some(rs) = rescaled_range(block) {
                rs_acc += rs;
                blocks += 1;
            }
        }
        if blocks > 0 {
            log_m.push((m as f64).ln());
            log_rs.push((rs_acc / blocks as f64).ln());
        }
        m *= 2;
    }
    let fit = linear_fit(&log_m, &log_rs);
    fit.slope.clamp(0.0, 1.0)
}

/// The rescaled range R/S of one block, or `None` for a constant block.
fn rescaled_range(block: &[f64]) -> Option<f64> {
    let m = mean(block);
    let s = variance(block).sqrt();
    if s <= 0.0 {
        return None;
    }
    let mut cum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in block {
        cum += x - m;
        min = min.min(cum);
        max = max.max(cum);
    }
    Some((max - min) / s)
}

/// Fits an exponential autocorrelation `ρ(τ) = e^{−τ/T_c}` to a sampled
/// series and returns the estimated `T_c`. The fit regresses `ln ρ(k)`
/// on lag over the range where `ρ` stays positive and above `min_rho`.
///
/// Returns `None` if fewer than 3 usable lags exist (e.g. white noise).
pub fn fit_correlation_timescale(xs: &[f64], dt: f64, max_lag: usize, min_rho: f64) -> Option<f64> {
    assert!(dt > 0.0 && max_lag >= 3);
    let r = acf(xs, max_lag);
    let mut lags = Vec::new();
    let mut lnr = Vec::new();
    for (k, &v) in r.iter().enumerate().skip(1) {
        if v <= min_rho {
            break;
        }
        lags.push(k as f64 * dt);
        lnr.push(v.ln());
    }
    if lags.len() < 3 {
        return None;
    }
    let fit = linear_fit(&lags, &lnr);
    if fit.slope >= 0.0 {
        return None;
    }
    Some(-1.0 / fit.slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fgn::davies_harte;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| mbac_num::rng::standard_normal(&mut rng))
            .collect()
    }

    #[test]
    fn white_noise_hurst_is_half() {
        let xs = white_noise(1 << 14, 81);
        let h_vt = hurst_variance_time(&xs);
        let h_rs = hurst_rs(&xs);
        assert!((h_vt - 0.5).abs() < 0.08, "variance-time H = {h_vt}");
        // R/S has a well-known small-sample bias toward ~0.55-0.6.
        assert!((h_rs - 0.55).abs() < 0.12, "R/S H = {h_rs}");
    }

    #[test]
    fn fgn_hurst_recovered() {
        for &h in &[0.7, 0.85] {
            let xs = davies_harte(h, 1 << 15, &mut StdRng::seed_from_u64(83));
            let h_vt = hurst_variance_time(&xs);
            assert!(
                (h_vt - h).abs() < 0.1,
                "variance-time H = {h_vt}, true H = {h}"
            );
            let h_rs = hurst_rs(&xs);
            assert!((h_rs - h).abs() < 0.15, "R/S H = {h_rs}, true H = {h}");
        }
    }

    #[test]
    fn correlation_timescale_recovered_from_ar1() {
        // AR(1) with a = e^{-dt/T_c}, T_c = 2, dt = 0.5.
        let t_c: f64 = 2.0;
        let dt = 0.5;
        let a = (-dt / t_c).exp();
        let mut rng = StdRng::seed_from_u64(85);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..200_000)
            .map(|_| {
                x = a * x + (1.0 - a * a).sqrt() * mbac_num::rng::standard_normal(&mut rng);
                x
            })
            .collect();
        let est = fit_correlation_timescale(&xs, dt, 20, 0.02).unwrap();
        assert!((est - t_c).abs() < 0.2, "estimated T_c = {est}");
    }

    #[test]
    fn white_noise_has_no_timescale() {
        let xs = white_noise(50_000, 87);
        assert!(fit_correlation_timescale(&xs, 1.0, 20, 0.02).is_none());
    }

    #[test]
    fn rescaled_range_edge_cases() {
        assert!(rescaled_range(&[1.0, 1.0, 1.0]).is_none());
        let rs = rescaled_range(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        assert!(rs > 0.0);
    }

    #[test]
    #[should_panic]
    fn variance_time_rejects_short_series() {
        hurst_variance_time(&[1.0; 10]);
    }
}
