//! # mbac-traffic — traffic source models for the MBAC framework
//!
//! Stationary per-flow bandwidth processes used to drive the simulator
//! and the paper's experiments:
//!
//! * [`rcbr`] — the paper's §5.2 simulation source: piecewise-constant
//!   rates with Gaussian marginal and exponential renegotiation
//!   intervals, giving exactly the OU autocorrelation of eqn (31);
//! * [`markov`] — K-state Markov-modulated fluids (incl. the classical
//!   on–off voice source), the model class named in Assumption B.6;
//! * [`ar1`] — a sampled Ornstein–Uhlenbeck source (same second-order
//!   statistics as RCBR, continuous path structure);
//! * [`multiscale`] — superpositions of RCBR components across decades
//!   of time-scales (discrete LRD approximation, §5.3);
//! * [`fgn`] — exact fractional Gaussian noise (Hosking and
//!   Davies–Harte), the substrate for genuine long-range dependence;
//! * [`trace`] / [`starwars`] — trace-driven playback and the synthetic
//!   Starwars-like LRD trace substituting for the paper's MPEG-1 movie
//!   (see DESIGN.md §4 for the substitution argument);
//! * [`validate`] — empirical Hurst and correlation-time estimators
//!   certifying the synthetic traffic's properties.
//!
//! All sources implement [`process::RateProcess`] (object-safe, explicit
//! RNG, analytic moments) and are spawned per-flow through
//! [`process::SourceModel`].

#![warn(missing_docs)]

pub mod ar1;
pub mod batch;
pub mod fgn;
pub mod marginal;
pub mod markov;
pub mod multiscale;
pub mod process;
pub mod rcbr;
pub mod starwars;
pub mod trace;
pub mod validate;

pub use ar1::{Ar1Config, Ar1Model, Ar1Source};
pub use batch::{BatchKey, DynBatch, FlowBatch};
pub use fgn::{davies_harte, fgn_autocovariance, hosking};
pub use marginal::Marginal;
pub use markov::{MarkovFluidFactory, MarkovFluidModel, MarkovFluidSource};
pub use multiscale::{MultiScaleConfig, MultiScaleModel, MultiScaleSource, ScaleComponent};
pub use process::{RateProcess, SourceModel};
pub use rcbr::{GeneralRcbrModel, GeneralRcbrSource, RcbrConfig, RcbrModel, RcbrSource};
pub use starwars::{generate_starwars_like, StarwarsConfig};
pub use trace::{Trace, TraceModel, TraceSource};
pub use validate::{fit_correlation_timescale, hurst_rs, hurst_variance_time};
