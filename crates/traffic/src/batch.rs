//! Batched struct-of-arrays (SoA) flow engines.
//!
//! The simulator's hot path advances `N` flows over millions of ticks.
//! With one `Box<dyn RateProcess>` per flow, every tick costs `N`
//! virtual `advance` calls plus `N` more virtual `rate()` calls per
//! snapshot, and the per-flow state is scattered across the heap — the
//! loop can neither vectorize nor stay in cache. A [`FlowBatch`]
//! instead holds the state of *all* flows of one model in contiguous
//! arrays and advances them in a single pass with the model constants
//! (`e^{−Δ/T_c}`, innovation σ, …) hoisted out of the loop, leaving a
//! cached rate vector the simulator reads for free.
//!
//! Models opt in by returning a [`BatchKey`] from
//! [`SourceModel::batch_key`] and an empty batch from
//! [`SourceModel::new_batch`]; heterogeneous, trace-driven, or
//! otherwise unbatchable sources keep working through the boxed
//! [`DynBatch`] fallback, which preserves the exact per-flow semantics
//! of the unbatched engine (it still refreshes its rate cache in the
//! same pass as the advance, halving the virtual walks of the old
//! engine).
//!
//! # RNG-stream contract
//!
//! Batched kernels must consume the RNG in **exactly** the same order
//! as their boxed counterparts: [`FlowBatch::spawn_one`] draws what
//! [`SourceModel::spawn`] draws, and [`FlowBatch::advance_all`]
//! advances flow 0, then flow 1, … drawing per flow what
//! [`RateProcess::advance`] draws. This makes a batched simulation
//! bit-identical to the boxed one for a fixed seed (the equivalence
//! tests in `mbac-sim` assert this), so switching engines never
//! changes scientific results.

use crate::process::RateProcess;
#[cfg(doc)]
use crate::process::SourceModel;
use mbac_num::RateMoments;
use rand::rngs::StdRng;

/// Identifies which [`FlowBatch`] a model's flows can join. Two models
/// with equal keys must spawn statistically identical flows (they share
/// one batch inside the simulator's flow table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchKey {
    /// AR(1) / sampled-OU sources (see [`crate::ar1`]).
    Ar1 {
        /// Stationary mean `μ`.
        mean: f64,
        /// Stationary standard deviation `σ`.
        std_dev: f64,
        /// Correlation time-scale `T_c`.
        t_c: f64,
        /// Update tick `Δ`.
        tick: f64,
        /// Whether rates are clamped at zero.
        clamp_at_zero: bool,
    },
    /// RCBR sources with a Gaussian marginal (see [`crate::rcbr`]).
    Rcbr {
        /// Marginal mean `μ`.
        mean: f64,
        /// Marginal standard deviation `σ`.
        std_dev: f64,
        /// Mean renegotiation interval `T_c`.
        t_c: f64,
        /// Whether negotiated rates are truncated at zero.
        truncate_at_zero: bool,
    },
    /// Generalized RCBR sources with an arbitrary marginal.
    GeneralRcbr {
        /// The marginal rate distribution.
        marginal: crate::marginal::Marginal,
        /// Mean renegotiation interval `T_c`.
        t_c: f64,
    },
    /// Markov fluids sharing one generator. The key is the address of
    /// the shared [`crate::markov::MarkovFluidModel`]; the batch holds
    /// an `Arc` to the model, so the address cannot be reused while the
    /// batch is alive.
    Markov(usize),
}

/// A contiguous batch of flows spawned from one source model, advanced
/// together. See the module docs for the RNG-stream contract.
pub trait FlowBatch: Send {
    /// Number of flows in the batch.
    fn len(&self) -> usize;

    /// Whether the batch holds no flows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advances every flow by `dt` (flow 0 first, then flow 1, …) and
    /// refreshes the cached rate vector in the same pass.
    ///
    /// Takes a concrete [`StdRng`] (not `&mut dyn RngCore`): the hot
    /// path is dominated by random draws, and the concrete type lets
    /// the samplers monomorphize and inline into the kernel loop while
    /// still consuming the exact same stream as the boxed path.
    fn advance_all(&mut self, dt: f64, rng: &mut StdRng);

    /// Advances every flow by `dt` exactly as [`FlowBatch::advance_all`]
    /// and folds each refreshed rate into `mom`, in slot order, in the
    /// same pass. The fused tick loop uses this so a measurement tick
    /// costs one sweep over the flow state instead of an advance sweep
    /// followed by a snapshot sweep.
    ///
    /// Contract: after this call the batch state, the RNG stream, *and*
    /// the values folded into `mom` (count, order, bit patterns) must be
    /// identical to `advance_all(dt, rng)` followed by
    /// `mom.add_slice(self.rates())` — which is exactly what the default
    /// implementation does. Specialized kernels may only override this
    /// with a fusion that preserves that equivalence.
    fn advance_and_measure(&mut self, dt: f64, rng: &mut StdRng, mom: &mut RateMoments) {
        self.advance_all(dt, rng);
        mom.add_slice(self.rates());
    }

    /// The per-flow instantaneous rates, contiguous and in slot order.
    /// Valid until the next mutating call.
    fn rates(&self) -> &[f64];

    /// Spawns one fresh stationary flow at the end of the batch,
    /// drawing from the RNG exactly as [`SourceModel::spawn`] would.
    ///
    /// # Panics
    /// Panics on batches that can only adopt existing processes
    /// ([`DynBatch`]): their flows are spawned boxed and pushed via
    /// [`FlowBatch::try_push_boxed`].
    fn spawn_one(&mut self, rng: &mut StdRng);

    /// Adopts an already-running boxed process, if this batch supports
    /// heterogeneous members. Specialized SoA batches return the
    /// process back as `Err` (default); [`DynBatch`] accepts.
    fn try_push_boxed(
        &mut self,
        process: Box<dyn RateProcess>,
    ) -> Result<(), Box<dyn RateProcess>> {
        Err(process)
    }

    /// Removes the flow in slot `i` by swapping the last slot into it
    /// (O(1); the caller mirrors the reorder in its own bookkeeping).
    fn swap_remove(&mut self, i: usize);
}

/// The boxed fallback batch: a plain list of `Box<dyn RateProcess>`
/// plus a rate cache refreshed in the advance pass. Used for models
/// without a specialized kernel and for flows admitted as existing
/// processes (the impulsive harness's measured candidates).
#[derive(Default)]
pub struct DynBatch {
    procs: Vec<Box<dyn RateProcess>>,
    rates: Vec<f64>,
}

impl DynBatch {
    /// Creates an empty fallback batch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowBatch for DynBatch {
    fn len(&self) -> usize {
        self.procs.len()
    }

    fn advance_all(&mut self, dt: f64, rng: &mut StdRng) {
        for (p, r) in self.procs.iter_mut().zip(self.rates.iter_mut()) {
            p.advance(dt, rng);
            *r = p.rate();
        }
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn spawn_one(&mut self, _rng: &mut StdRng) {
        unreachable!("DynBatch flows are spawned boxed and pushed via try_push_boxed")
    }

    fn try_push_boxed(
        &mut self,
        process: Box<dyn RateProcess>,
    ) -> Result<(), Box<dyn RateProcess>> {
        self.rates.push(process.rate());
        self.procs.push(process);
        Ok(())
    }

    fn swap_remove(&mut self, i: usize) {
        self.procs.swap_remove(i);
        self.rates.swap_remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ar1::{Ar1Config, Ar1Model};
    use crate::marginal::Marginal;
    use crate::markov::{MarkovFluidFactory, MarkovFluidModel};
    use crate::process::test_util::{check_acf_fn, check_moments_fn};
    use crate::process::SourceModel;
    use crate::rcbr::{GeneralRcbrModel, RcbrConfig, RcbrModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Verifies the RNG-stream contract: for identical seeds, a batch of
    /// `n` flows spawned via `spawn_one` and advanced via `advance_all`
    /// must produce bit-identical rates to `n` boxed flows spawned via
    /// `SourceModel::spawn` and advanced one by one — including after a
    /// mid-run swap-remove mirrored on both sides.
    fn assert_bit_exact(model: &dyn SourceModel, seed: u64) {
        // More than one 8-lane chunk plus a remainder, so chunked
        // kernels are checked on both their fused and scalar paths.
        let n = 13;
        let mut boxed_rng = StdRng::seed_from_u64(seed);
        let mut batch_rng = StdRng::seed_from_u64(seed);

        let mut boxed: Vec<Box<dyn RateProcess>> =
            (0..n).map(|_| model.spawn(&mut boxed_rng)).collect();
        let mut batch = model
            .new_batch()
            .expect("model advertises a batched kernel");
        for _ in 0..n {
            batch.spawn_one(&mut batch_rng);
        }
        let boxed_rates = |boxed: &[Box<dyn RateProcess>]| -> Vec<f64> {
            boxed.iter().map(|p| p.rate()).collect()
        };
        assert_eq!(boxed_rates(&boxed), batch.rates());

        for step in 0..200 {
            let dt = 0.05 + 0.11 * (step % 7) as f64;
            for p in boxed.iter_mut() {
                p.advance(dt, &mut boxed_rng);
            }
            batch.advance_all(dt, &mut batch_rng);
            assert_eq!(
                boxed_rates(&boxed),
                batch.rates(),
                "diverged at step {step}"
            );
        }

        // Departure: remove slot 1 on both sides, keep evolving.
        boxed.swap_remove(1);
        batch.swap_remove(1);
        for _ in 0..50 {
            for p in boxed.iter_mut() {
                p.advance(0.25, &mut boxed_rng);
            }
            batch.advance_all(0.25, &mut batch_rng);
            assert_eq!(boxed_rates(&boxed), batch.rates());
        }

        // Admission mid-run: spawn one more on both sides.
        boxed.push(model.spawn(&mut boxed_rng));
        batch.spawn_one(&mut batch_rng);
        for _ in 0..50 {
            for p in boxed.iter_mut() {
                p.advance(0.4, &mut boxed_rng);
            }
            batch.advance_all(0.4, &mut batch_rng);
            assert_eq!(boxed_rates(&boxed), batch.rates());
        }
    }

    /// Verifies the `advance_and_measure` contract: against a twin batch
    /// driven by `advance_all` + `add_slice`, the fused call must leave
    /// identical rates, consume the identical RNG stream, and produce a
    /// bit-identical [`RateMoments`] — including through a mid-run
    /// departure and admission that desynchronize the flows' tick
    /// phases (exercising chunked kernels' mixed-step fallback).
    fn assert_fused_measure_bit_exact(model: &dyn SourceModel, seed: u64) {
        let n = 13;
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut a = model.new_batch().expect("batched kernel");
        let mut b = model.new_batch().expect("batched kernel");
        for _ in 0..n {
            a.spawn_one(&mut rng_a);
            b.spawn_one(&mut rng_b);
        }
        fn step_once(
            step: usize,
            a: &mut dyn FlowBatch,
            b: &mut dyn FlowBatch,
            rng_a: &mut StdRng,
            rng_b: &mut StdRng,
        ) {
            let dt = 0.05 + 0.11 * (step % 7) as f64;
            let pivot = 0.9 + 0.01 * (step % 5) as f64;
            a.advance_all(dt, rng_a);
            let mut ma = RateMoments::new(pivot);
            ma.add_slice(a.rates());
            let mut mb = RateMoments::new(pivot);
            b.advance_and_measure(dt, rng_b, &mut mb);
            assert_eq!(a.rates(), b.rates(), "rates diverged at step {step}");
            assert_eq!(ma, mb, "moments diverged at step {step}");
        }
        for step in 0..150 {
            step_once(step, &mut *a, &mut *b, &mut rng_a, &mut rng_b);
        }
        // Desynchronize tick phases: drop a flow, admit a fresh one
        // (elapsed 0 while the survivors sit mid-tick).
        a.swap_remove(2);
        b.swap_remove(2);
        a.spawn_one(&mut rng_a);
        b.spawn_one(&mut rng_b);
        for step in 150..300 {
            step_once(step, &mut *a, &mut *b, &mut rng_a, &mut rng_b);
        }
    }

    #[test]
    fn ar1_fused_measure_is_bit_exact() {
        let model = Ar1Model::new(Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.07,
            clamp_at_zero: true,
        });
        assert_fused_measure_bit_exact(&model, 51);
    }

    #[test]
    fn rcbr_fused_measure_is_bit_exact() {
        let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
        assert_fused_measure_bit_exact(&model, 52);
    }

    #[test]
    fn ar1_batch_is_bit_exact() {
        let model = Ar1Model::new(Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: true,
        });
        assert_bit_exact(&model, 41);
    }

    #[test]
    fn rcbr_batch_is_bit_exact() {
        let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
        assert_bit_exact(&model, 42);
    }

    #[test]
    fn general_rcbr_batch_is_bit_exact() {
        let model = GeneralRcbrModel::new(Marginal::two_point_with_moments(1.0, 0.3), 1.0);
        assert_bit_exact(&model, 43);
    }

    #[test]
    fn markov_batch_is_bit_exact() {
        let model = MarkovFluidFactory::new(MarkovFluidModel::on_off(2.0, 1.0, 3.0));
        assert_bit_exact(&model, 44);
    }

    /// Runs a one-flow batch through the same statistical harness
    /// (`check_moments_fn` / `check_acf_fn`, same tolerances) as the
    /// boxed sources: stationary moments and exponential ACF with
    /// time-scale `t_c`.
    #[allow(clippy::too_many_arguments)]
    fn check_batch_statistics(
        model: &dyn SourceModel,
        t_c: f64,
        dt_m: f64,
        steps_m: usize,
        tol_var: f64,
        dt_a: f64,
        steps_a: usize,
        lags: &[usize],
        seeds: (u64, u64, u64),
    ) {
        let mut rng = StdRng::seed_from_u64(seeds.0);
        let mut batch = model.new_batch().expect("batched kernel");
        batch.spawn_one(&mut rng);
        check_moments_fn(
            |dt, rng| {
                batch.advance_all(dt, rng);
                batch.rates()[0]
            },
            dt_m,
            steps_m,
            model.mean(),
            model.variance(),
            0.01,
            tol_var,
            seeds.1,
        );
        let mut batch = model.new_batch().expect("batched kernel");
        batch.spawn_one(&mut rng);
        let want: Vec<f64> = lags
            .iter()
            .map(|&lag| (-(lag as f64) * dt_a / t_c).exp())
            .collect();
        check_acf_fn(
            |dt, rng| {
                batch.advance_all(dt, rng);
                batch.rates()[0]
            },
            dt_a,
            steps_a,
            lags,
            &want,
            0.02,
            seeds.2,
        );
    }

    #[test]
    fn ar1_batch_stationary_moments_and_acf() {
        let model = Ar1Model::new(Ar1Config {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            tick: 0.05,
            clamp_at_zero: false,
        });
        check_batch_statistics(
            &model,
            1.0,
            0.25,
            200_000,
            0.01,
            0.5,
            300_000,
            &[1, 2, 4],
            (21, 22, 24),
        );
    }

    #[test]
    fn rcbr_batch_stationary_moments_and_acf() {
        let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
        check_batch_statistics(
            &model,
            1.0,
            0.25,
            200_000,
            0.01,
            0.5,
            400_000,
            &[1, 2, 4, 6],
            (1, 2, 4),
        );
    }

    #[test]
    fn markov_batch_stationary_moments_and_acf() {
        // λ + μ = 4/3 ⇒ ρ(τ) = e^{−4τ/3} ⇒ effective T_c = 3/4.
        let model = MarkovFluidFactory::new(MarkovFluidModel::on_off(1.0, 1.0, 3.0));
        check_batch_statistics(
            &model,
            0.75,
            0.2,
            300_000,
            0.02,
            0.25,
            400_000,
            &[1, 2, 4],
            (13, 12, 14),
        );
    }

    #[test]
    fn dyn_batch_tracks_boxed_processes() {
        let model = RcbrModel::new(RcbrConfig::paper_default(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let mut batch = DynBatch::new();
        for _ in 0..8 {
            batch.try_push_boxed(model.spawn(&mut rng)).ok().unwrap();
        }
        assert_eq!(batch.len(), 8);
        let before = batch.rates().to_vec();
        batch.advance_all(10.0, &mut rng);
        assert_ne!(batch.rates(), &before[..]);
        batch.swap_remove(0);
        assert_eq!(batch.len(), 7);
        assert_eq!(batch.rates().len(), 7);
    }

    #[test]
    fn batch_keys_compare_by_configuration() {
        let a = BatchKey::Rcbr {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            truncate_at_zero: true,
        };
        let b = BatchKey::Rcbr {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 1.0,
            truncate_at_zero: true,
        };
        let c = BatchKey::Rcbr {
            mean: 1.0,
            std_dev: 0.3,
            t_c: 2.0,
            truncate_at_zero: true,
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
