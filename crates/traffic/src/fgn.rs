//! Fractional Gaussian noise (fGn) generation — the long-range-
//! dependence substrate for the Starwars-trace experiments (Figs 11–12).
//!
//! fGn with Hurst parameter `H ∈ (0, 1)` is the stationary increment
//! process of fractional Brownian motion; its autocovariance
//!
//! `γ(k) = (σ²/2)(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})`
//!
//! decays like `k^{2H−2}`, i.e. is *non-summable* for `H > 1/2` — the
//! defining property of long-range dependence observed in VBR video
//! (Beran et al., Garrett & Willinger) and cited in §5.3.
//!
//! Two exact generators are provided:
//! * [`hosking`] — Durbin–Levinson recursion, O(n²), any covariance;
//! * [`davies_harte`] — circulant embedding via our FFT, O(n log n),
//!   used for long traces.
//!
//! Both are exact in distribution; the tests verify their sample ACFs
//! against `γ(k)` and against each other.

use mbac_num::complex::Complex64;
use mbac_num::fft::{fft_in_place, FftDirection};
use mbac_num::rng::standard_normal;
use rand::RngCore;

/// Autocovariance of unit-variance fGn at integer lag `k` for Hurst
/// parameter `h`.
pub fn fgn_autocovariance(h: f64, k: usize) -> f64 {
    assert!(
        h > 0.0 && h < 1.0,
        "Hurst parameter must be in (0,1), got {h}"
    );
    if k == 0 {
        return 1.0;
    }
    let k = k as f64;
    let p = 2.0 * h;
    0.5 * ((k + 1.0).powf(p) - 2.0 * k.powf(p) + (k - 1.0).powf(p))
}

/// Generates `n` samples of zero-mean, unit-variance fGn with Hurst
/// parameter `h` by the Hosking (Durbin–Levinson) recursion. Exact, but
/// O(n²) — prefer [`davies_harte`] for `n ≳ 10⁴`.
pub fn hosking(h: f64, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
    assert!(n > 0, "need at least one sample");
    let gamma: Vec<f64> = (0..n).map(|k| fgn_autocovariance(h, k)).collect();
    let mut out = Vec::with_capacity(n);
    out.push(standard_normal(rng)); // γ(0) = 1
    if n == 1 {
        return out;
    }
    let mut phi = vec![0.0f64; n];
    let mut phi_prev = vec![0.0f64; n];
    let mut v = 1.0f64;
    for k in 1..n {
        // Reflection coefficient.
        let mut acc = gamma[k];
        for j in 1..k {
            acc -= phi_prev[j] * gamma[k - j];
        }
        let kappa = acc / v;
        phi[k] = kappa;
        for j in 1..k {
            phi[j] = phi_prev[j] - kappa * phi_prev[k - j];
        }
        v *= 1.0 - kappa * kappa;
        debug_assert!(v > 0.0, "innovation variance must stay positive");
        // Conditional mean of x_k given the past.
        let mut mean = 0.0;
        for j in 1..=k {
            mean += phi[j] * out[k - j];
        }
        out.push(mean + v.sqrt() * standard_normal(rng));
        phi_prev[..=k].copy_from_slice(&phi[..=k]);
    }
    out
}

/// Generates `n` samples of zero-mean, unit-variance fGn with Hurst
/// parameter `h` by Davies–Harte circulant embedding. O(n log n).
///
/// # Panics
/// Panics if the circulant eigenvalues come out significantly negative,
/// which cannot happen for the fGn covariance (it is known to embed
/// non-negatively) — the check guards against implementation bugs.
pub fn davies_harte(h: f64, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
    assert!(n > 0, "need at least one sample");
    if n == 1 {
        return vec![standard_normal(rng)];
    }
    // Embed in a circulant of power-of-two size g ≥ 2n.
    let g = (2 * n).next_power_of_two();
    let half = g / 2;
    let mut c = vec![Complex64::ZERO; g];
    for j in 0..=half {
        let v = fgn_autocovariance(h, j);
        c[j] = Complex64::from_real(v);
        if j != 0 && j != half {
            c[g - j] = Complex64::from_real(v);
        }
    }
    // Eigenvalues of the circulant.
    fft_in_place(&mut c, FftDirection::Forward);
    let lambda: Vec<f64> = c
        .iter()
        .map(|z| {
            assert!(
                z.re > -1e-6,
                "circulant embedding produced negative eigenvalue {}",
                z.re
            );
            z.re.max(0.0)
        })
        .collect();
    // Build the spectrally-weighted Gaussian vector with Hermitian
    // symmetry so the transform is real.
    let mut a = vec![Complex64::ZERO; g];
    a[0] = Complex64::from_real((lambda[0] / g as f64).sqrt() * standard_normal(rng));
    a[half] = Complex64::from_real((lambda[half] / g as f64).sqrt() * standard_normal(rng));
    for j in 1..half {
        let scale = (lambda[j] / (2.0 * g as f64)).sqrt();
        let re = scale * standard_normal(rng);
        let im = scale * standard_normal(rng);
        a[j] = Complex64::new(re, im);
        a[g - j] = Complex64::new(re, -im);
    }
    fft_in_place(&mut a, FftDirection::Forward);
    a.truncate(n);
    a.into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbac_num::{acf, mean, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn autocovariance_sanity() {
        // H = 1/2 is white noise: γ(k) = 0 for k ≥ 1.
        for k in 1..10 {
            assert!(fgn_autocovariance(0.5, k).abs() < 1e-12, "lag {k}");
        }
        // H > 1/2: positive, slowly-decaying correlations.
        assert!(fgn_autocovariance(0.8, 1) > 0.3);
        assert!(fgn_autocovariance(0.8, 100) > 0.0);
        // H < 1/2: negative lag-1 correlation.
        assert!(fgn_autocovariance(0.3, 1) < 0.0);
        // γ(0) = 1 always.
        assert_eq!(fgn_autocovariance(0.7, 0), 1.0);
    }

    #[test]
    fn autocovariance_power_law_tail() {
        // γ(k) ~ H(2H−1) k^{2H−2}: check the log-log slope.
        let h = 0.8;
        let g1 = fgn_autocovariance(h, 100);
        let g2 = fgn_autocovariance(h, 1000);
        let slope = (g2 / g1).ln() / 10f64.ln();
        assert!(
            (slope - (2.0 * h - 2.0)).abs() < 0.01,
            "tail slope {slope}, want {}",
            2.0 * h - 2.0
        );
    }

    /// Autocorrelation around the *known* zero mean. The usual sample
    /// ACF subtracts the sample mean, which for LRD series of length n
    /// is biased downward by ≈ Var(X̄ₙ) ≈ n^{2H−2} — material at the
    /// path lengths used here, so the tests avoid it.
    fn acf_known_mean(x: &[f64], max_lag: usize) -> Vec<f64> {
        let n = x.len();
        let c0: f64 = x.iter().map(|v| v * v).sum::<f64>() / n as f64;
        (0..=max_lag)
            .map(|k| {
                let c: f64 = (0..n - k).map(|i| x[i] * x[i + k]).sum::<f64>() / n as f64;
                c / c0
            })
            .collect()
    }

    #[test]
    fn hosking_matches_target_acf() {
        let h = 0.75;
        let mut rng = StdRng::seed_from_u64(41);
        // Average the sample ACF over many medium-length paths.
        let paths = 200;
        let len = 256;
        let mut acc = [0.0; 6];
        for _ in 0..paths {
            let x = hosking(h, len, &mut rng);
            let r = acf_known_mean(&x, 5);
            for (k, v) in r.iter().enumerate() {
                acc[k] += v / paths as f64;
            }
        }
        for (k, &a) in acc.iter().enumerate().skip(1) {
            let want = fgn_autocovariance(h, k);
            assert!(
                (a - want).abs() < 0.05,
                "Hosking ACF[{k}] = {a}, want {want}"
            );
        }
    }

    #[test]
    fn davies_harte_matches_target_acf() {
        let h = 0.75;
        let mut rng = StdRng::seed_from_u64(43);
        let paths = 200;
        let len = 256;
        let mut acc = [0.0; 6];
        let mut var_acc = 0.0;
        for _ in 0..paths {
            let x = davies_harte(h, len, &mut rng);
            let r = acf_known_mean(&x, 5);
            for (k, v) in r.iter().enumerate() {
                acc[k] += v / paths as f64;
            }
            var_acc += x.iter().map(|v| v * v).sum::<f64>() / len as f64 / paths as f64;
        }
        assert!((var_acc - 1.0).abs() < 0.1, "variance {var_acc}");
        for (k, &a) in acc.iter().enumerate().skip(1) {
            let want = fgn_autocovariance(h, k);
            assert!(
                (a - want).abs() < 0.05,
                "Davies–Harte ACF[{k}] = {a}, want {want}"
            );
        }
    }

    #[test]
    fn generators_agree_with_each_other() {
        let h = 0.7;
        let mut rng = StdRng::seed_from_u64(45);
        let paths = 150;
        let len = 200;
        let (mut a_hos, mut a_dh) = (0.0, 0.0);
        for _ in 0..paths {
            a_hos += acf_known_mean(&hosking(h, len, &mut rng), 1)[1] / paths as f64;
            a_dh += acf_known_mean(&davies_harte(h, len, &mut rng), 1)[1] / paths as f64;
        }
        assert!(
            (a_hos - a_dh).abs() < 0.05,
            "lag-1 ACF: Hosking {a_hos} vs Davies–Harte {a_dh}"
        );
    }

    #[test]
    fn half_hurst_is_white_noise() {
        let mut rng = StdRng::seed_from_u64(47);
        let x = davies_harte(0.5, 4096, &mut rng);
        assert!(mean(&x).abs() < 0.08);
        assert!((variance(&x) - 1.0).abs() < 0.1);
        let r = acf(&x, 3);
        for (k, v) in r.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.05, "white-noise ACF[{k}] = {v}");
        }
    }

    #[test]
    fn aggregated_variance_shows_lrd() {
        // For fGn, Var(mean of m samples) ~ m^{2H−2}; white noise decays
        // like m^{-1}. Check H = 0.85 decays much more slowly.
        let h = 0.85;
        let mut rng = StdRng::seed_from_u64(49);
        let x = davies_harte(h, 1 << 15, &mut rng);
        let block_var = |m: usize| {
            let blocks: Vec<f64> = x.chunks_exact(m).map(mean).collect();
            variance(&blocks)
        };
        let v4 = block_var(4);
        let v64 = block_var(64);
        let slope = (v64 / v4).ln() / (64f64 / 4.0).ln();
        assert!(
            (slope - (2.0 * h - 2.0)).abs() < 0.25,
            "variance-time slope {slope}, want {}",
            2.0 * h - 2.0
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = davies_harte(0.7, 100, &mut StdRng::seed_from_u64(51));
        let b = davies_harte(0.7, 100, &mut StdRng::seed_from_u64(51));
        assert_eq!(a, b);
        let c = hosking(0.7, 50, &mut StdRng::seed_from_u64(52));
        let d = hosking(0.7, 50, &mut StdRng::seed_from_u64(52));
        assert_eq!(c, d);
    }

    #[test]
    fn single_sample_paths() {
        let mut rng = StdRng::seed_from_u64(53);
        assert_eq!(hosking(0.8, 1, &mut rng).len(), 1);
        assert_eq!(davies_harte(0.8, 1, &mut rng).len(), 1);
    }
}
